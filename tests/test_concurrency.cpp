// Concurrency suite for the serving executor and the receipt-based
// accounting plane: for every registered 1-D and spatial backend, driving
// the same query stream at T ∈ {1, 2, 4, 8} threads must produce results
// and summed op_stats receipts identical to the serial loop, and the
// network's traffic ledger must reconcile afterwards. This is also the
// binary the CI ThreadSanitizer job runs — the assertions double as the
// racing workload TSan instruments.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "api/spatial_registry.h"
#include "net/cursor.h"
#include "net/latency.h"
#include "net/network.h"
#include "serve/executor.h"
#include "serve/route_cache.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb;
using net::host_id;
using net::network;
namespace wl = skipweb::workloads;

host_id h(std::uint32_t v) { return host_id{v}; }

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

bool same_nn(const api::nn_result& a, const api::nn_result& b) {
  return a.has_pred == b.has_pred && a.has_succ == b.has_succ &&
         (!a.has_pred || a.pred == b.pred) && (!a.has_succ || a.succ == b.succ) &&
         a.stats == b.stats;
}

// --- executor plumbing -------------------------------------------------------

TEST(Executor, SlicesPartitionTheIndexSpace) {
  constexpr std::size_t ns[] = {0, 1, 7, 64, 1000};
  constexpr std::size_t Ts[] = {1, 2, 3, 4, 8, 13};
  for (const std::size_t n : ns) {
    for (const std::size_t T : Ts) {
      std::size_t expect_lo = 0;
      for (std::size_t t = 0; t < T; ++t) {
        const auto [lo, hi] = serve::executor::slice(n, t, T);
        EXPECT_EQ(lo, expect_lo) << "n=" << n << " T=" << T << " t=" << t;
        EXPECT_LE(hi - lo, n / T + 1);
        expect_lo = hi;
      }
      EXPECT_EQ(expect_lo, n);
    }
  }
}

TEST(Executor, ClampsToAtLeastOneThreadAndHandlesEmptyStreams) {
  serve::executor ex(0);
  EXPECT_EQ(ex.threads(), 1u);
  util::rng r(42);
  const auto keys = wl::uniform_keys(64, r);
  network net(1);
  const auto idx = api::make_index("skipweb1d", keys, api::index_options{}.seed(3), net);
  const auto out = ex.run_nearest(*idx, {}, h(0));
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.total, api::op_stats{});
}

TEST(Executor, PoolIsReusableAcrossRuns) {
  util::rng r(43);
  const auto keys = wl::uniform_keys(128, r);
  network net(1);
  const auto idx = api::make_index("skipweb1d", keys, api::index_options{}.seed(3), net);
  const auto qs = wl::query_stream(keys, 96, 7);
  serve::executor ex(4);
  const auto first = ex.run_nearest(*idx, qs, h(0));
  const auto second = ex.run_nearest(*idx, qs, h(0));
  ASSERT_EQ(first.results.size(), second.results.size());
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_TRUE(same_nn(first.results[i], second.results[i])) << i;
  }
  EXPECT_EQ(first.total, second.total);
}

// --- every 1-D backend: executor == serial loop, any thread count ------------

class ExecutorConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(ExecutorConformance, NearestMatchesSerialLoopAtEveryThreadCount) {
  util::rng r(9001);
  const auto keys = wl::uniform_keys(256, r);
  network net(1);
  const auto idx = api::make_index(
      GetParam(), keys, api::index_options{}.seed(97).initial_hosts(8).bucket_size(16).buckets(24),
      net);
  const auto qs = wl::query_stream(keys, 160, 9002);

  net.reset_traffic();
  std::vector<api::nn_result> serial;
  serial.reserve(qs.size());
  api::op_stats serial_total;
  for (const auto q : qs) {
    serial.push_back(idx->nearest(q, h(0)));
    serial_total += serial.back().stats;
  }
  const std::uint64_t serial_messages = net.total_messages();
  EXPECT_EQ(serial_total.messages, serial_messages);

  for (const std::size_t T : kThreadCounts) {
    net.reset_traffic();
    serve::executor ex(T);
    const auto out = ex.run_nearest(*idx, qs, h(0), 24);
    ASSERT_EQ(out.results.size(), serial.size()) << "T=" << T;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(same_nn(out.results[i], serial[i])) << "T=" << T << " i=" << i;
    }
    EXPECT_EQ(out.total, serial_total) << "T=" << T;
    // The workers' committed receipts reconcile with the shared ledger: the
    // merge order varies with the interleaving, the totals never do.
    EXPECT_EQ(net.total_messages(), serial_messages) << "T=" << T;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ExecutorConformance,
                         ::testing::ValuesIn(api::registered_backends()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// --- every spatial backend: run_locate == serial loop ------------------------

class SpatialExecutorConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(SpatialExecutorConformance, LocateMatchesSerialLoopAtEveryThreadCount) {
  const int dims = api::spatial_backend_dims(GetParam());
  util::rng r(9003);
  const auto pts = wl::spatial_points(dims, 128, false, r);
  network net(1);
  const auto idx = api::make_spatial_index(
      GetParam(), pts, api::index_options{}.seed(11).initial_hosts(32), net);
  const auto qs = wl::spatial_query_stream(dims, 96, 9004);

  net.reset_traffic();
  std::vector<api::spatial_locate_result> serial;
  serial.reserve(qs.size());
  api::op_stats serial_total;
  for (const auto& q : qs) {
    serial.push_back(idx->locate(q, h(0)));
    serial_total += serial.back().stats;
  }
  const std::uint64_t serial_messages = net.total_messages();

  for (const std::size_t T : kThreadCounts) {
    net.reset_traffic();
    serve::executor ex(T);
    const auto out = ex.run_locate(*idx, qs, h(0), 16);
    ASSERT_EQ(out.results.size(), serial.size()) << "T=" << T;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(out.results[i].found, serial[i].found) << "T=" << T << " i=" << i;
      EXPECT_EQ(out.results[i].cell, serial[i].cell) << "T=" << T << " i=" << i;
      EXPECT_EQ(out.results[i].scale, serial[i].scale) << "T=" << T << " i=" << i;
      EXPECT_EQ(out.results[i].stats, serial[i].stats) << "T=" << T << " i=" << i;
    }
    EXPECT_EQ(out.total, serial_total) << "T=" << T;
    EXPECT_EQ(net.total_messages(), serial_messages) << "T=" << T;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSpatialBackends, SpatialExecutorConformance,
                         ::testing::ValuesIn(api::registered_spatial_backends()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// --- churned structures: the lazily-repaired root hints race benignly --------

TEST(ExecutorConcurrency, ChurnedAnchorsAreSafeUnderConcurrentQueries) {
  // Erase many anchor items so root_for() chases redirects and repairs the
  // level_lists alive-hint from several threads at once (the one atomic on
  // the query path); TSan watches, the assertions check determinism.
  util::rng r(9005);
  auto keys = wl::uniform_keys(192, r);
  network net(1);
  const auto idx = api::make_index("skipweb1d", keys, api::index_options{}.seed(5), net);
  for (std::size_t i = 0; i < 120; ++i) {
    (void)idx->erase(keys[i], h(0));
  }
  const std::vector<std::uint64_t> live(keys.begin() + 120, keys.end());
  const auto qs = wl::query_stream(live, 128, 9006);

  std::vector<api::nn_result> serial;
  api::op_stats serial_total;
  for (const auto q : qs) {
    serial.push_back(idx->nearest(q, h(3)));
    serial_total += serial.back().stats;
  }
  serve::executor ex(8);
  const auto out = ex.run_nearest(*idx, qs, h(3), 8);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(same_nn(out.results[i], serial[i])) << i;
  }
  EXPECT_EQ(out.total, serial_total);
}

// --- the hot-route replica cache under concurrent serving --------------------

TEST(ExecutorConcurrency, RouteCacheServingIsRaceFreeAndAnswerIdentical) {
  // Workers commit receipts (feeding route_cache::on_commit through the
  // network's cache seam) while other workers' cursors concurrently consult
  // absorbs() — the exact read/learn race the cache's lock-free slot array
  // and try-lock learning are built for. TSan watches; the assertions check
  // the replica-cache contract: answers identical to an uncached twin at
  // every thread count, even though receipts may legitimately differ.
  util::rng r(9010);
  const auto keys = wl::uniform_keys(256, r);
  const auto qs = wl::zipf_query_stream(keys, 256, 9011, 1.1);

  network plain_net(1);
  const auto plain = api::make_index("skipweb1d", keys, api::index_options{}.seed(7), plain_net);
  std::vector<api::nn_result> want;
  for (const auto q : qs) want.push_back(plain->nearest(q, h(0)));

  network net(1);
  serve::route_cache::options co;
  co.capacity = 16;
  co.depth = 8;
  co.promote_after = 4;
  serve::route_cache cache(co);
  const auto idx = api::make_index("skipweb1d", keys,
                                   api::index_options{}.seed(7).route_cache(&cache), net);
  for (const std::size_t T : kThreadCounts) {
    serve::executor ex(T);
    const auto out = ex.run_nearest(*idx, qs, h(0), 16);
    ASSERT_EQ(out.results.size(), want.size()) << "T=" << T;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(out.results[i].has_pred, want[i].has_pred) << "T=" << T << " i=" << i;
      EXPECT_EQ(out.results[i].has_succ, want[i].has_succ) << "T=" << T << " i=" << i;
      if (want[i].has_pred) EXPECT_EQ(out.results[i].pred, want[i].pred) << "T=" << T << " i=" << i;
      if (want[i].has_succ) EXPECT_EQ(out.results[i].succ, want[i].succ) << "T=" << T << " i=" << i;
    }
  }
  // After the first pass trained it, the cache must have actually absorbed
  // traffic (quiescent read: the executor joined its waves).
  EXPECT_GT(cache.hits(), 0u);
}

// --- cross-plane composition: loss + latency + replication + cache -----------

TEST(LatencyComposition, AllPlanesComposeDeterministicallyAcrossThreadCounts) {
  // Every stochastic plane at once — replicated routing, message loss with
  // its retries, and a LogNormal hop clock — and the executor must STILL
  // reproduce the serial loop bit-for-bit at every thread count: answers,
  // per-op receipts (summed), and the network's simulated-time ledger. This
  // is the strongest form of the determinism contract: each plane draws only
  // from (seed, from, to, cursor-private serial), so their composition
  // cannot couple concurrent operations either.
  util::rng r(9020);
  const auto keys = wl::uniform_keys(224, r);
  const auto qs = wl::query_stream(keys, 192, 9021);
  network net(1);
  const auto idx = api::make_index("skipweb1d", keys,
                                   api::index_options{}.seed(11).replication(3), net);
  net.set_message_loss(0.05, 9022);
  net.set_latency_model(net::latency_model::lognormal(1500, 0.5, 9023));
  net.reset_traffic();

  std::vector<api::nn_result> serial;
  api::op_stats serial_total;
  for (const auto q : qs) {
    serial.push_back(idx->nearest(q, h(0)));
    serial_total += serial.back().stats;
  }
  const std::uint64_t serial_sim = net.total_sim_ns();
  const std::uint64_t serial_msgs = net.total_messages();
  EXPECT_GT(serial_total.retries, 0u);       // the loss plane actually fired
  EXPECT_GT(serial_total.sim_latency_ns, 0u);  // and the clock actually ran

  for (const std::size_t T : {1u, 2u, 4u}) {
    net.reset_traffic();
    serve::executor ex(T);
    const auto out = ex.run_nearest(*idx, qs, h(0), 16);
    ASSERT_EQ(out.results.size(), serial.size()) << "T=" << T;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(same_nn(out.results[i], serial[i])) << "T=" << T << " i=" << i;
    }
    EXPECT_EQ(out.total, serial_total) << "T=" << T;
    EXPECT_EQ(net.total_sim_ns(), serial_sim) << "T=" << T;
    EXPECT_EQ(net.total_messages(), serial_msgs) << "T=" << T;
  }
}

TEST(LatencyComposition, RouteCacheComposesWithLossLatencyAndReplication) {
  // Same composition plus the hot-route replica cache: absorbed hops change
  // the receipts (legitimately — that's the cache working), so the contract
  // weakens to answer-identity against an uncached twin, at every thread
  // count, while TSan watches the cache's lock-free learning race against
  // cursors drawing loss and latency from the same commits.
  util::rng r(9024);
  const auto keys = wl::uniform_keys(224, r);
  const auto qs = wl::zipf_query_stream(keys, 224, 9025, 1.1);

  network plain_net(1);
  const auto plain = api::make_index("skipweb1d", keys,
                                     api::index_options{}.seed(11).replication(3), plain_net);
  plain_net.set_message_loss(0.05, 9026);
  plain_net.set_latency_model(net::latency_model::lognormal(1500, 0.5, 9027));
  std::vector<api::nn_result> want;
  for (const auto q : qs) want.push_back(plain->nearest(q, h(0)));

  network net(1);
  serve::route_cache::options co;
  co.capacity = 16;
  co.depth = 8;
  co.promote_after = 4;
  serve::route_cache cache(co);
  const auto idx = api::make_index(
      "skipweb1d", keys,
      api::index_options{}.seed(11).replication(3).route_cache(&cache), net);
  net.set_message_loss(0.05, 9026);
  net.set_latency_model(net::latency_model::lognormal(1500, 0.5, 9027));

  for (const std::size_t T : {1u, 2u, 4u}) {
    serve::executor ex(T);
    const auto out = ex.run_nearest(*idx, qs, h(0), 16);
    ASSERT_EQ(out.results.size(), want.size()) << "T=" << T;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(out.results[i].has_pred, want[i].has_pred) << "T=" << T << " i=" << i;
      EXPECT_EQ(out.results[i].has_succ, want[i].has_succ) << "T=" << T << " i=" << i;
      if (want[i].has_pred) EXPECT_EQ(out.results[i].pred, want[i].pred) << "T=" << T << " i=" << i;
      if (want[i].has_succ) EXPECT_EQ(out.results[i].succ, want[i].succ) << "T=" << T << " i=" << i;
    }
  }
  EXPECT_GT(cache.hits(), 0u);
}

// --- seed-determinism: splittable streams & workload generation --------------

TEST(RngStreams, AreStatelessAndIndependent) {
  // stream() is a pure function of (seed, which): no parent state consumed,
  // so derivation order cannot matter.
  auto a0 = util::rng::stream(77, 0);
  auto a1 = util::rng::stream(77, 1);
  auto b1 = util::rng::stream(77, 1);
  auto b0 = util::rng::stream(77, 0);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a0.next_u64(), b0.next_u64());
    EXPECT_EQ(a1.next_u64(), b1.next_u64());
  }
  // Nearby tags yield unrelated streams.
  auto c0 = util::rng::stream(77, 0);
  auto c1 = util::rng::stream(77, 1);
  EXPECT_NE(c0.next_u64(), c1.next_u64());
  // Unlike split(), which consumes parent state.
  util::rng parent1(77), parent2(77);
  (void)parent2.next_u64();
  EXPECT_NE(parent1.split(0).next_u64(), parent2.split(0).next_u64());
}

TEST(WorkloadDeterminism, QueryStreamIsThreadCountInvariant) {
  util::rng r(9007);
  const auto keys = wl::uniform_keys(200, r);
  // The stream is a pure function of (keys, count, seed)...
  const auto qs1 = wl::query_stream(keys, 300, 123);
  const auto qs2 = wl::query_stream(keys, 300, 123);
  EXPECT_EQ(qs1, qs2);
  EXPECT_NE(qs1, wl::query_stream(keys, 300, 124));
  // ...and the executor partition reassembles it exactly, so every thread
  // count serves the identical query set in the identical global order.
  for (const std::size_t T : kThreadCounts) {
    std::vector<std::uint64_t> reassembled;
    for (std::size_t t = 0; t < T; ++t) {
      const auto [lo, hi] = serve::executor::slice(qs1.size(), t, T);
      reassembled.insert(reassembled.end(), qs1.begin() + static_cast<std::ptrdiff_t>(lo),
                         qs1.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    EXPECT_EQ(reassembled, qs1) << "T=" << T;
  }
  const auto sq1 = wl::spatial_query_stream(2, 50, 55);
  const auto sq2 = wl::spatial_query_stream(2, 50, 55);
  EXPECT_EQ(sq1, sq2);
}

// --- raw commit contention: many threads, one ledger -------------------------

TEST(NetworkCommit, ConcurrentCommitsAreExact) {
  network net(64);
  constexpr std::size_t kThreads = 8, kOpsPerThread = 200, kHopsPerOp = 10;
  {
    serve::executor ex(kThreads);
    ex.for_slices(kThreads * kOpsPerThread, [&](std::size_t, std::size_t lo, std::size_t hi) {
      for (std::size_t op = lo; op < hi; ++op) {
        net::cursor cur(net, h(0));
        for (std::size_t i = 1; i <= kHopsPerOp; ++i) {
          // Hosts 1..63 only: never the origin, and consecutive hops are
          // distinct, so every iteration is a real (charged) hop.
          cur.move_to(h(static_cast<std::uint32_t>((op + i) % 63 + 1)));
        }
      }
    });
  }
  EXPECT_TRUE(net.traffic_quiescent());
  std::uint64_t visit_sum = 0;
  for (std::uint32_t i = 0; i < 64; ++i) visit_sum += net.visits(h(i));
  EXPECT_EQ(net.total_messages(), kThreads * kOpsPerThread * kHopsPerOp);
  EXPECT_EQ(visit_sum, net.total_messages());
}

TEST(NetworkCommit, HardwareReport) {
  // Not an assertion — records what the scaling numbers in BENCH_*.json were
  // up against on this machine.
  ::testing::Test::RecordProperty("hardware_concurrency",
                                  static_cast<int>(std::thread::hardware_concurrency()));
  SUCCEED();
}

}  // namespace
