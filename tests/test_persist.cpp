// The persistence plane's correctness contract (DESIGN.md §13): a restored
// index must be indistinguishable from its never-persisted twin through the
// public surface — same answers, same uids, same cost receipts, same
// deployment ledger — in both restore modes (owned read and zero-copy mmap),
// and it must STAY indistinguishable under routed inserts/erases after the
// restore (the mmap mode's copy-on-first-write). Corruption is always a
// clean persist::error, never UB — these tests run under ASan in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/spatial_registry.h"
#include "api/string_registry.h"
#include "core/level_lists.h"
#include "net/network.h"
#include "persist/snapshot.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb;
using net::host_id;
using net::network;
using util::rng;
namespace fs = std::filesystem;
namespace wl = skipweb::workloads;

host_id h(std::uint32_t v) { return host_id{v}; }

// Per-test snapshot path; removed on the way in so build-or-restore tests
// start from a clean slate.
std::string snap_path(const std::string& name) {
  const auto p = fs::path(::testing::TempDir()) / ("skipweb_" + name + ".snap");
  std::error_code ec;
  fs::remove(p, ec);
  return p.string();
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

// --- layer 1: the arena round-trip itself ------------------------------------

void expect_lists_identical(const core::level_lists& a, const core::level_lists& b) {
  ASSERT_EQ(a.arena_size(), b.arena_size());
  ASSERT_EQ(a.levels(), b.levels());
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < static_cast<int>(a.arena_size()); ++i) {
    ASSERT_EQ(a.alive(i), b.alive(i)) << i;
    ASSERT_EQ(a.key(i), b.key(i)) << i;
    ASSERT_EQ(a.bits(i), b.bits(i)) << i;
    ASSERT_EQ(a.uid(i), b.uid(i)) << i;
    if (!a.alive(i)) continue;
    for (int l = 0; l <= a.levels(); ++l) {
      ASSERT_EQ(a.next(i, l), b.next(i, l)) << i << " level " << l;
      ASSERT_EQ(a.prev(i, l), b.prev(i, l)) << i << " level " << l;
      ASSERT_EQ(a.next_key(i, l), b.next_key(i, l)) << i << " level " << l;
      ASSERT_EQ(a.prev_key(i, l), b.prev_key(i, l)) << i << " level " << l;
    }
  }
}

TEST(Persist, LevelListsRoundTripBothModes) {
  rng r(4242);
  auto keys = wl::uniform_keys(3000, r);
  std::sort(keys.begin(), keys.end());
  rng rb(77);
  auto lists =
      core::level_lists::build_from_sorted(keys, rb, core::level_lists::levels_for(keys.size()));
  const auto path = snap_path("level_lists");
  {
    persist::writer w(path);
    lists.save(w, "lists");
    w.finish();
  }
  for (const auto mode : {persist::restore_mode::load, persist::restore_mode::map}) {
    persist::reader rd(path, mode);
    core::level_lists restored(rd, "lists");
    expect_lists_identical(lists, restored);
    EXPECT_TRUE(restored.check_invariants());
  }
}

TEST(Persist, UnfinishedWriterLeavesNoFile) {
  const auto path = snap_path("unfinished");
  {
    persist::writer w(path);
    w.add_u64("a", 1);
    // No finish(): destructor must remove the torn file.
  }
  EXPECT_FALSE(fs::exists(path));
}

// --- layer 2: corruption is a clean error, never UB --------------------------

class PersistCorruption : public ::testing::Test {
 protected:
  // A real snapshot to damage: skipweb1d over 400 keys.
  void SetUp() override {
    rng r(9);
    keys_ = wl::uniform_keys(400, r);
    path_ = snap_path("corruption");
    network net(1);
    const auto idx =
        api::make_index("skipweb1d", keys_, api::index_options{}.seed(3).initial_hosts(8), net);
    api::save_index_snapshot(*idx, path_);
  }
  std::vector<std::uint64_t> keys_;
  std::string path_;
};

TEST_F(PersistCorruption, BadMagicRejectedInBothModes) {
  flip_byte(path_, 1);
  network net(1);
  EXPECT_THROW((void)api::restore_index(path_, persist::restore_mode::load, net),
               persist::error);
  EXPECT_THROW((void)api::restore_index(path_, persist::restore_mode::map, net), persist::error);
}

TEST_F(PersistCorruption, FlippedPayloadByteFailsOwnedReadChecksum) {
  // Offset 64 is the first payload byte (sections are 64-byte aligned after
  // the header) — load mode verifies every payload checksum eagerly.
  flip_byte(path_, 64);
  network net(1);
  EXPECT_THROW((void)api::restore_index(path_, persist::restore_mode::load, net),
               persist::error);
}

TEST_F(PersistCorruption, FlippedTableByteRejectedInBothModes) {
  // The section table sits at the end of the file; both modes verify it.
  flip_byte(path_, fs::file_size(path_) - 10);
  network net(1);
  EXPECT_THROW((void)api::restore_index(path_, persist::restore_mode::load, net),
               persist::error);
  EXPECT_THROW((void)api::restore_index(path_, persist::restore_mode::map, net), persist::error);
}

TEST_F(PersistCorruption, TruncatedFileRejected) {
  fs::resize_file(path_, fs::file_size(path_) / 2);
  network net(1);
  EXPECT_THROW((void)api::restore_index(path_, persist::restore_mode::load, net),
               persist::error);
  EXPECT_THROW((void)api::restore_index(path_, persist::restore_mode::map, net), persist::error);
}

TEST_F(PersistCorruption, WrongIndexKindRejected) {
  network net(1);
  EXPECT_THROW((void)api::restore_spatial_index(path_, persist::restore_mode::load, net),
               persist::error);
}

// --- layer 3: restored twins through the 1-D registry ------------------------

class PersistConformance : public ::testing::TestWithParam<std::string> {};

// For every snapshot-capable backend: save, restore in both modes onto fresh
// networks, and drive original + both twins through the same routed query
// and mutation sequences — answers, receipts and the deployment ledger must
// never diverge (the enforcement style of test_bulk_build.cpp). Backends
// without the capability must refuse with unsupported_operation.
TEST_P(PersistConformance, RestoredTwinIndistinguishable) {
  rng r(1234);
  const auto all = wl::uniform_keys(500, r);
  const std::vector<std::uint64_t> build(all.begin(), all.begin() + 400);
  const std::vector<std::uint64_t> extra(all.begin() + 400, all.end());
  const auto opts = api::index_options{}.seed(42).initial_hosts(8).bucket_size(16).buckets(24);
  network net_o(1);
  const auto orig = api::make_index(GetParam(), build, opts, net_o);
  const auto path = snap_path("conf_" + GetParam());
  if (!has(orig->capabilities(), api::capability::snapshot)) {
    EXPECT_THROW(api::save_index_snapshot(*orig, path), api::unsupported_operation);
    return;
  }
  ASSERT_TRUE(api::backend_restorable(GetParam()));
  api::save_index_snapshot(*orig, path);
  network net_l(1), net_m(1);
  const auto twin_l = api::restore_index(path, persist::restore_mode::load, net_l);
  const auto twin_m = api::restore_index(path, persist::restore_mode::map, net_m);
  const std::vector<std::pair<api::distributed_index*, network*>> twins = {
      {twin_l.get(), &net_l}, {twin_m.get(), &net_m}};
  for (const auto& [twin, net] : twins) {
    ASSERT_EQ(twin->backend(), GetParam());
    ASSERT_EQ(twin->size(), orig->size());
    ASSERT_EQ(net->host_count(), net_o.host_count());
    ASSERT_EQ(net->total_memory(), net_o.total_memory());
  }
  const auto probe_all = [&](const char* when) {
    rng pr(999);
    std::uint32_t origin = 0;
    for (const auto q : wl::probe_keys(all, 80, pr)) {
      const auto o = h(origin);
      origin = static_cast<std::uint32_t>((origin + 1) % net_o.host_count());
      const auto na = orig->nearest(q, o);
      const auto ca = orig->contains(q, o);
      for (const auto& [twin, net] : twins) {
        const auto nb = twin->nearest(q, o);
        ASSERT_EQ(na.pred, nb.pred) << when << " " << q;
        ASSERT_EQ(na.succ, nb.succ) << when << " " << q;
        ASSERT_EQ(na.stats, nb.stats) << when << " " << q;
        const auto cb = twin->contains(q, o);
        ASSERT_EQ(ca.value, cb.value) << when << " " << q;
        ASSERT_EQ(ca.stats, cb.stats) << when << " " << q;
      }
    }
    const auto ra = orig->range(all[5], all[5] + (std::uint64_t{1} << 60), h(2), 50);
    for (const auto& [twin, net] : twins) {
      const auto rb = twin->range(all[5], all[5] + (std::uint64_t{1} << 60), h(2), 50);
      ASSERT_EQ(ra.value, rb.value) << when;
      ASSERT_EQ(ra.stats, rb.stats) << when;
    }
  };
  probe_all("fresh restore");
  // Post-restore routed mutations: inserts of held-out keys, then erases of
  // built keys. Identical receipts op by op; the map twin's arenas copy on
  // first write here.
  for (std::size_t i = 0; i < extra.size(); ++i) {
    const auto o = h(static_cast<std::uint32_t>(i % net_o.host_count()));
    const auto sa = orig->insert(extra[i], o);
    for (const auto& [twin, net] : twins) {
      ASSERT_EQ(sa, twin->insert(extra[i], o)) << "insert " << i;
    }
  }
  for (std::size_t i = 0; i < 60; ++i) {
    const auto o = h(static_cast<std::uint32_t>(i % net_o.host_count()));
    const auto sa = orig->erase(build[i * 3], o);
    for (const auto& [twin, net] : twins) {
      ASSERT_EQ(sa, twin->erase(build[i * 3], o)) << "erase " << i;
    }
  }
  for (const auto& [twin, net] : twins) {
    ASSERT_EQ(twin->size(), orig->size());
    ASSERT_EQ(net->total_memory(), net_o.total_memory());
  }
  probe_all("after mutations");
  // The mutated twin can itself be snapshotted: one more full cycle.
  const auto path2 = snap_path("conf2_" + GetParam());
  api::save_index_snapshot(*twin_l, path2);
  network net_2(1);
  const auto twin_2 = api::restore_index(path2, persist::restore_mode::map, net_2);
  rng pr(321);
  for (const auto q : wl::probe_keys(all, 30, pr)) {
    const auto na = orig->nearest(q, h(1));
    const auto nb = twin_2->nearest(q, h(1));
    ASSERT_EQ(na.pred, nb.pred);
    ASSERT_EQ(na.succ, nb.succ);
    ASSERT_EQ(na.stats, nb.stats);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PersistConformance,
                         ::testing::ValuesIn(api::registered_backends()),
                         [](const auto& info) { return info.param; });

// --- layer 4: restored twins through the spatial registry --------------------

class SpatialPersistConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(SpatialPersistConformance, RestoredTwinIndistinguishable) {
  rng r(4321);
  const int dims = api::spatial_backend_dims(GetParam());
  const auto all = wl::spatial_points(dims, 260, false, r);
  const std::vector<api::spatial_point> build(all.begin(), all.begin() + 200);
  const std::vector<api::spatial_point> extra(all.begin() + 200, all.end());
  const auto opts = api::index_options{}.seed(17).initial_hosts(8);
  network net_o(1);
  const auto orig = api::make_spatial_index(GetParam(), build, opts, net_o);
  const auto path = snap_path("sconf_" + GetParam());
  if (!has(orig->capabilities(), api::spatial_capability::snapshot)) {
    EXPECT_THROW(api::save_spatial_snapshot(*orig, path), api::unsupported_operation);
    return;
  }
  api::save_spatial_snapshot(*orig, path);
  network net_l(1), net_m(1);
  const auto twin_l = api::restore_spatial_index(path, persist::restore_mode::load, net_l);
  const auto twin_m = api::restore_spatial_index(path, persist::restore_mode::map, net_m);
  const std::vector<std::pair<api::spatial_index*, network*>> twins = {{twin_l.get(), &net_l},
                                                                       {twin_m.get(), &net_m}};
  for (const auto& [twin, net] : twins) {
    ASSERT_EQ(twin->backend(), GetParam());
    ASSERT_EQ(twin->dims(), dims);
    ASSERT_EQ(twin->size(), orig->size());
    ASSERT_EQ(net->host_count(), net_o.host_count());
    ASSERT_EQ(net->total_memory(), net_o.total_memory());
  }
  const auto probe_all = [&](const char* when) {
    rng pr(111);
    for (int i = 0; i < 60; ++i) {
      const auto q = wl::spatial_probe(dims, pr);
      const auto o = h(static_cast<std::uint32_t>(i % net_o.host_count()));
      const auto la = orig->locate(q, o);
      const auto na = orig->approx_nn(q, o);
      for (const auto& [twin, net] : twins) {
        const auto lb = twin->locate(q, o);
        ASSERT_EQ(la.found, lb.found) << when << " " << i;
        ASSERT_EQ(la.cell, lb.cell) << when << " " << i;
        ASSERT_EQ(la.scale, lb.scale) << when << " " << i;
        ASSERT_EQ(la.stats, lb.stats) << when << " " << i;
        const auto nb = twin->approx_nn(q, o);
        ASSERT_EQ(na.value, nb.value) << when << " " << i;
        ASSERT_EQ(na.stats, nb.stats) << when << " " << i;
      }
    }
    api::spatial_box box;
    box.lo = build[3];
    box.hi = build[3];
    for (int d = 0; d < dims; ++d) {
      const auto i = static_cast<std::size_t>(d);
      box.lo.x[i] = std::min(box.lo.x[i], build[7].x[i]);
      box.hi.x[i] = std::max(box.hi.x[i], build[7].x[i]);
    }
    const auto ra = orig->orthogonal_range(box, h(2), 0);
    for (const auto& [twin, net] : twins) {
      const auto rb = twin->orthogonal_range(box, h(2), 0);
      ASSERT_EQ(ra.value, rb.value) << when;
      ASSERT_EQ(ra.stats, rb.stats) << when;
    }
  };
  probe_all("fresh restore");
  for (std::size_t i = 0; i < extra.size(); ++i) {
    const auto o = h(static_cast<std::uint32_t>(i % net_o.host_count()));
    const auto sa = orig->insert(extra[i], o);
    for (const auto& [twin, net] : twins) {
      ASSERT_EQ(sa, twin->insert(extra[i], o)) << "insert " << i;
    }
  }
  for (std::size_t i = 0; i < 40; ++i) {
    const auto o = h(static_cast<std::uint32_t>(i % net_o.host_count()));
    const auto sa = orig->erase(build[i * 4], o);
    for (const auto& [twin, net] : twins) {
      ASSERT_EQ(sa, twin->erase(build[i * 4], o)) << "erase " << i;
    }
  }
  for (const auto& [twin, net] : twins) {
    ASSERT_EQ(twin->size(), orig->size());
    ASSERT_EQ(net->total_memory(), net_o.total_memory());
  }
  probe_all("after mutations");
}

INSTANTIATE_TEST_SUITE_P(AllSpatialBackends, SpatialPersistConformance,
                         ::testing::ValuesIn(api::registered_spatial_backends()),
                         [](const auto& info) { return info.param; });

// --- layer 4b: restored twins through the string registry --------------------

class StringPersistConformance : public ::testing::TestWithParam<std::string> {};

// String snapshots are replay logs, not arenas: the restore rebuilds the
// backend from the saved build set (same seed, same pre-grow host count) and
// replays the op log, so the twin must be receipt-identical — not just
// answer-identical — across the whole text surface, and must stay so under
// routed mutations after the restore.
TEST_P(StringPersistConformance, RestoredTwinIndistinguishable) {
  rng r(5252);
  const auto all = wl::url_paths(260, r);
  const std::vector<std::string> build(all.begin(), all.begin() + 200);
  const std::vector<std::string> extra(all.begin() + 200, all.end());
  const auto opts = api::index_options{}.seed(42).initial_hosts(8);
  network net_o(1);
  const auto orig = api::make_string_index(GetParam(), build, opts, net_o);
  ASSERT_TRUE(orig->supports(api::string_capability::snapshot));

  // Mutate before saving so the replay log is non-trivial: the snapshot must
  // carry history, not just the build set.
  for (std::size_t i = 0; i < 20; ++i) {
    orig->insert(extra[i], h(static_cast<std::uint32_t>(i % net_o.host_count())));
  }
  for (std::size_t i = 0; i < 10; ++i) {
    orig->erase(build[i * 7], h(static_cast<std::uint32_t>(i % net_o.host_count())));
  }
  const auto path = snap_path("strconf_" + GetParam());
  api::save_string_snapshot(*orig, path);

  network net_l(1), net_m(1);
  const auto twin_l = api::restore_string_index(path, persist::restore_mode::load, net_l);
  const auto twin_m = api::restore_string_index(path, persist::restore_mode::map, net_m);
  const std::vector<std::pair<api::string_index*, network*>> twins = {{twin_l.get(), &net_l},
                                                                      {twin_m.get(), &net_m}};
  for (const auto& [twin, net] : twins) {
    ASSERT_EQ(twin->backend(), GetParam());
    ASSERT_EQ(twin->size(), orig->size());
    ASSERT_EQ(net->host_count(), net_o.host_count());
  }
  const auto probe_all = [&](const char* when) {
    std::uint32_t origin = 0;
    for (const auto& q : wl::string_query_stream(all, 60, 5353)) {
      const auto o = h(origin);
      origin = static_cast<std::uint32_t>((origin + 1) % net_o.host_count());
      const auto ca = orig->contains(q, o);
      for (const auto& [twin, net] : twins) {
        const auto cb = twin->contains(q, o);
        ASSERT_EQ(ca.value, cb.value) << when << " " << q;
        ASSERT_EQ(ca.stats, cb.stats) << when << " " << q;
      }
    }
    for (const auto& p : wl::prefix_stream(all, 20, 5353)) {
      const auto pa = orig->prefix_match(p, h(1));
      const auto ta = orig->top_k(p, 5, h(1));
      for (const auto& [twin, net] : twins) {
        const auto pb = twin->prefix_match(p, h(1));
        ASSERT_EQ(pa.value, pb.value) << when << " " << p;
        ASSERT_EQ(pa.stats, pb.stats) << when << " " << p;
        const auto tb = twin->top_k(p, 5, h(1));
        ASSERT_EQ(ta.value, tb.value) << when << " " << p;
        ASSERT_EQ(ta.stats, tb.stats) << when << " " << p;
      }
    }
    const auto ra = orig->lex_range(build[2], build[2] + "~", h(2));
    const auto terms = api::string_tokens(build[4]);
    const auto ia = orig->intersect(terms, h(2));
    for (const auto& [twin, net] : twins) {
      const auto rb = twin->lex_range(build[2], build[2] + "~", h(2));
      ASSERT_EQ(ra.value, rb.value) << when;
      ASSERT_EQ(ra.stats, rb.stats) << when;
      const auto ib = twin->intersect(terms, h(2));
      ASSERT_EQ(ia.value, ib.value) << when;
      ASSERT_EQ(ia.stats, ib.stats) << when;
    }
  };
  probe_all("fresh restore");
  // Post-restore routed mutations: receipts must track op by op.
  for (std::size_t i = 20; i < extra.size(); ++i) {
    const auto o = h(static_cast<std::uint32_t>(i % net_o.host_count()));
    const auto sa = orig->insert(extra[i], o);
    for (const auto& [twin, net] : twins) {
      ASSERT_EQ(sa, twin->insert(extra[i], o)) << "insert " << i;
    }
  }
  for (std::size_t i = 0; i < 15; ++i) {
    const auto o = h(static_cast<std::uint32_t>(i % net_o.host_count()));
    const auto sa = orig->erase(build[100 + i * 6], o);
    for (const auto& [twin, net] : twins) {
      ASSERT_EQ(sa, twin->erase(build[100 + i * 6], o)) << "erase " << i;
    }
  }
  for (const auto& [twin, net] : twins) {
    ASSERT_EQ(twin->size(), orig->size());
  }
  probe_all("after mutations");
  // The mutated twin can itself be snapshotted: one more full cycle.
  const auto path2 = snap_path("strconf2_" + GetParam());
  api::save_string_snapshot(*twin_l, path2);
  network net_2(1);
  const auto twin_2 = api::restore_string_index(path2, persist::restore_mode::map, net_2);
  ASSERT_EQ(twin_2->size(), orig->size());
  for (const auto& q : wl::string_query_stream(all, 30, 5454)) {
    const auto a = orig->contains(q, h(1));
    const auto b = twin_2->contains(q, h(1));
    ASSERT_EQ(a.value, b.value) << q;
    ASSERT_EQ(a.stats, b.stats) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStringBackends, StringPersistConformance,
                         ::testing::ValuesIn(api::registered_string_backends()),
                         [](const auto& info) { return info.param; });

TEST(StringPersist, WrongIndexKindRejected) {
  // A 1-D ordered-key snapshot must not restore as a text index (and vice
  // versa — the index_kind field in the meta section tells them apart).
  rng r(5555);
  const auto keys = wl::uniform_keys(120, r);
  const auto path = snap_path("string_kind");
  network net(1);
  const auto idx =
      api::make_index("skipweb1d", keys, api::index_options{}.seed(3).initial_hosts(8), net);
  api::save_index_snapshot(*idx, path);
  network net2(1);
  EXPECT_THROW((void)api::restore_string_index(path, persist::restore_mode::load, net2),
               persist::error);

  const auto spath = snap_path("string_kind2");
  rng r2(5556);
  const auto skeys = wl::dictionary_words(60, r2);
  network net3(1);
  const auto sidx = api::make_string_index("string_skiptrie", skeys,
                                           api::index_options{}.seed(3).initial_hosts(8), net3);
  api::save_string_snapshot(*sidx, spath);
  network net4(1);
  EXPECT_THROW((void)api::restore_index(spath, persist::restore_mode::load, net4),
               persist::error);
}

TEST(StringPersist, CorruptStringSnapshotRejected) {
  rng r(5557);
  const auto keys = wl::dictionary_words(100, r);
  const auto path = snap_path("string_corrupt");
  network net(1);
  const auto idx = api::make_string_index("string_sorted", keys,
                                          api::index_options{}.seed(9).initial_hosts(8), net);
  api::save_string_snapshot(*idx, path);
  flip_byte(path, 64);  // first payload byte
  network net2(1);
  EXPECT_THROW((void)api::restore_string_index(path, persist::restore_mode::load, net2),
               persist::error);
}

// --- layer 5: the build-or-restore entry points ------------------------------

TEST(Persist, SnapshotPathBuildsThenRestores) {
  rng r(5);
  const auto keys = wl::uniform_keys(600, r);
  const auto path = snap_path("build_or_restore");
  const auto opts = api::index_options{}.seed(11).initial_hosts(8).snapshot_path(path);
  network net_a(1);
  const auto built = api::make_index("skipweb1d", keys, opts, net_a);
  ASSERT_TRUE(fs::exists(path));  // first start: built, compacted, saved
  network net_b(1);
  const auto restored = api::make_index("skipweb1d", {}, opts, net_b);  // keys ignored
  ASSERT_EQ(restored->size(), built->size());
  ASSERT_EQ(net_b.host_count(), net_a.host_count());
  rng pr(66);
  for (const auto q : wl::probe_keys(keys, 60, pr)) {
    const auto na = built->nearest(q, h(3));
    const auto nb = restored->nearest(q, h(3));
    ASSERT_EQ(na.pred, nb.pred);
    ASSERT_EQ(na.succ, nb.succ);
    ASSERT_EQ(na.stats, nb.stats);
  }
}

TEST(Persist, SnapshotPathIgnoredByNonSnapshotBackends) {
  rng r(6);
  const auto keys = wl::uniform_keys(200, r);
  const auto path = snap_path("chord_ignores");
  network net(1);
  const auto idx = api::make_index(
      "chord", keys, api::index_options{}.seed(1).initial_hosts(8).buckets(24).snapshot_path(path),
      net);
  EXPECT_EQ(idx->size(), keys.size());
  EXPECT_FALSE(fs::exists(path));  // the plane is silently skipped
}

TEST(Persist, SpatialSnapshotPathBuildsThenRestores) {
  rng r(7);
  const auto pts = wl::spatial_points(2, 300, false, r);
  const auto path = snap_path("spatial_build_or_restore");
  const auto opts = api::index_options{}.seed(13).initial_hosts(8).snapshot_path(path);
  network net_a(1);
  const auto built = api::make_spatial_index("skip_quadtree2", pts, opts, net_a);
  ASSERT_TRUE(fs::exists(path));
  network net_b(1);
  const auto restored = api::make_spatial_index("skip_quadtree2", {}, opts, net_b);
  ASSERT_EQ(restored->size(), built->size());
  rng pr(8);
  for (int i = 0; i < 40; ++i) {
    const auto q = wl::spatial_probe(2, pr);
    const auto la = built->locate(q, h(2));
    const auto lb = restored->locate(q, h(2));
    ASSERT_EQ(la.cell, lb.cell);
    ASSERT_EQ(la.stats, lb.stats);
  }
}

TEST(Persist, StringSnapshotPathBuildsThenRestores) {
  rng r(15);
  const auto keys = wl::url_paths(300, r);
  const auto path = snap_path("string_build_or_restore");
  const auto opts = api::index_options{}.seed(19).initial_hosts(8).snapshot_path(path);
  network net_a(1);
  const auto built = api::make_string_index("string_skiptrie", keys, opts, net_a);
  ASSERT_TRUE(fs::exists(path));  // first start: built and saved
  network net_b(1);
  const auto restored = api::make_string_index("string_skiptrie", {}, opts, net_b);
  ASSERT_EQ(restored->size(), built->size());
  ASSERT_EQ(net_b.host_count(), net_a.host_count());
  for (const auto& q : wl::string_query_stream(keys, 50, 16)) {
    const auto a = built->contains(q, h(3));
    const auto b = restored->contains(q, h(3));
    ASSERT_EQ(a.value, b.value) << q;
    ASSERT_EQ(a.stats, b.stats) << q;
  }
  for (const auto& p : wl::prefix_stream(keys, 15, 16)) {
    ASSERT_EQ(built->top_k(p, 4, h(0)).value, restored->top_k(p, 4, h(0)).value) << p;
  }
}

// --- layer 6: compaction squares the footprint with the file -----------------

TEST(Persist, CompactDrivesSlackToZeroAndFileCoversArena) {
  rng r(21);
  const auto keys = wl::uniform_keys(2000, r);
  network net(1);
  const auto idx =
      api::make_index("skipweb1d", keys, api::index_options{}.seed(2).initial_hosts(8), net);
  // Grow past the build so the arenas carry slack, then compact via save.
  rng kr(22);
  for (int i = 0; i < 200; ++i) idx->insert(kr.next_u64() >> 1, h(0));
  const auto path = snap_path("footprint");
  api::save_index_snapshot(*idx, path);  // compacts first (DESIGN.md §13)
  const auto f = idx->footprint();
  EXPECT_LE(f.slack_bytes, 1024u);  // shrunk to fit (allocator rounding aside)
  // Every resident arena byte is on disk: the file also carries headers,
  // the section table and the ledger, so it can only be larger.
  EXPECT_GE(fs::file_size(path), f.arena_bytes);
}

// --- layer 7: the crash-restart smoke ----------------------------------------

// Build, persist, "crash" (destroy every in-memory object), restore from the
// file alone and serve a first query — the headline path of the restart
// bench, kept here as a correctness smoke.
TEST(Persist, CrashRestartServesFirstQuery) {
  const auto path = snap_path("crash_restart");
  std::uint64_t probe = 0;
  std::uint64_t expect_pred = 0, expect_succ = 0;
  {
    rng r(31);
    const auto keys = wl::uniform_keys(5000, r);
    probe = keys[1234] + 1;
    network net(1);
    const auto idx =
        api::make_index("skipweb1d", keys, api::index_options{}.seed(4).initial_hosts(16), net);
    const auto n = idx->nearest(probe, h(5));
    expect_pred = n.pred;
    expect_succ = n.succ;
    api::save_index_snapshot(*idx, path);
  }  // <- crash: nothing survives but the file
  network net(1);
  const auto idx = api::restore_index(path, persist::restore_mode::map, net);
  const auto n = idx->nearest(probe, h(5));
  EXPECT_EQ(n.pred, expect_pred);
  EXPECT_EQ(n.succ, expect_succ);
}

}  // namespace
