#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "seq/trapmap.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb::seq;
using skipweb::util::rng;
namespace wl = skipweb::workloads;

trapmap make_map(const std::vector<segment>& segs) {
  const auto box = wl::segment_box();
  return trapmap(segs, box.xmin, box.xmax, box.ymin, box.ymax);
}

TEST(Trapmap, EmptyMapIsOneTrapezoid) {
  trapmap m({}, 0, 1, 0, 1);
  EXPECT_EQ(m.trapezoid_count(), 1u);
  EXPECT_EQ(m.locate(0.5, 0.5), 0);
  EXPECT_NEAR(m.area(0), 1.0, 1e-12);
}

TEST(Trapmap, SingleSegmentMakesFourTrapezoids) {
  trapmap m({segment{0.25, 0.5, 0.75, 0.5}}, 0, 1, 0, 1);
  EXPECT_EQ(m.trapezoid_count(), 4u);
  // Left of the segment, above, below, and right.
  const int left = m.locate(0.1, 0.5);
  const int above = m.locate(0.5, 0.8);
  const int below = m.locate(0.5, 0.2);
  const int right = m.locate(0.9, 0.5);
  std::set<int> distinct = {left, above, below, right};
  EXPECT_EQ(distinct.size(), 4u);
  for (int t : distinct) EXPECT_GE(t, 0);
}

TEST(Trapmap, TrapezoidCountIs3NPlus1) {
  rng r(101);
  for (std::size_t n : {1u, 2u, 5u, 17u, 64u, 200u}) {
    const auto segs = wl::random_disjoint_segments(n, r);
    const auto m = make_map(segs);
    EXPECT_EQ(m.trapezoid_count(), 3 * n + 1) << "n=" << n;
  }
}

TEST(Trapmap, AreasPartitionTheBox) {
  rng r(103);
  const auto segs = wl::random_disjoint_segments(60, r);
  const auto m = make_map(segs);
  double total = 0;
  for (std::size_t i = 0; i < m.trapezoid_count(); ++i) total += m.area(static_cast<int>(i));
  const auto box = wl::segment_box();
  EXPECT_NEAR(total, (box.xmax - box.xmin) * (box.ymax - box.ymin), 1e-9);
}

TEST(Trapmap, EveryProbeLandsInExactlyOneTrapezoid) {
  rng r(107);
  const auto segs = wl::random_disjoint_segments(40, r);
  const auto m = make_map(segs);
  for (const auto& [x, y] : wl::interior_probes(300, r)) {
    int count = 0;
    for (std::size_t t = 0; t < m.trapezoid_count(); ++t) {
      count += m.contains(static_cast<int>(t), x, y);
    }
    EXPECT_EQ(count, 1) << "probe (" << x << "," << y << ")";
  }
}

TEST(Trapmap, AdjacencyIsSymmetric) {
  rng r(109);
  const auto segs = wl::random_disjoint_segments(50, r);
  const auto m = make_map(segs);
  for (std::size_t i = 0; i < m.trapezoid_count(); ++i) {
    const auto& t = m.trap(static_cast<int>(i));
    for (int rn : t.right_nb) {
      if (rn < 0) continue;
      const auto& u = m.trap(rn);
      EXPECT_TRUE(u.left_nb[0] == static_cast<int>(i) || u.left_nb[1] == static_cast<int>(i));
      EXPECT_DOUBLE_EQ(u.left_x, t.right_x);
    }
    for (int ln : t.left_nb) {
      if (ln < 0) continue;
      const auto& u = m.trap(ln);
      EXPECT_TRUE(u.right_nb[0] == static_cast<int>(i) || u.right_nb[1] == static_cast<int>(i));
      EXPECT_DOUBLE_EQ(u.right_x, t.left_x);
    }
  }
}

TEST(Trapmap, TrapezoidGeometryIsSane) {
  rng r(113);
  const auto segs = wl::random_disjoint_segments(30, r);
  const auto m = make_map(segs);
  for (std::size_t i = 0; i < m.trapezoid_count(); ++i) {
    const auto& t = m.trap(static_cast<int>(i));
    EXPECT_LT(t.left_x, t.right_x);
    const auto [x, y] = m.interior_point(static_cast<int>(i));
    EXPECT_TRUE(m.contains(static_cast<int>(i), x, y));
    EXPECT_GT(m.area(static_cast<int>(i)), 0.0);
  }
}

TEST(Trapmap, OverlapsIsSymmetricAndReflexive) {
  rng r(127);
  const auto segs = wl::random_disjoint_segments(25, r);
  std::vector<segment> half;
  for (const auto& s : segs) {
    if (r.bit()) half.push_back(s);
  }
  const auto dense = make_map(segs);
  const auto sparse = make_map(half);
  for (std::size_t a = 0; a < sparse.trapezoid_count(); ++a) {
    for (std::size_t b = 0; b < dense.trapezoid_count(); ++b) {
      EXPECT_EQ(sparse.overlaps(static_cast<int>(a), dense, static_cast<int>(b)),
                dense.overlaps(static_cast<int>(b), sparse, static_cast<int>(a)));
    }
  }
}

// The conflict lists must cover point location: for any probe, the dense
// trapezoid containing it conflicts with the sparse trapezoid containing it.
TEST(Trapmap, ConflictsCoverPointLocation) {
  rng r(131);
  const auto segs = wl::random_disjoint_segments(40, r);
  std::vector<segment> half;
  for (const auto& s : segs) {
    if (r.bit()) half.push_back(s);
  }
  const auto dense = make_map(segs);
  const auto sparse = make_map(half);
  for (const auto& [x, y] : wl::interior_probes(200, r)) {
    const int st = sparse.locate(x, y);
    const int dt = dense.locate(x, y);
    ASSERT_GE(st, 0);
    ASSERT_GE(dt, 0);
    const auto confl = sparse.conflicts(st, dense);
    EXPECT_NE(std::find(confl.begin(), confl.end(), dt), confl.end())
        << "conflict list misses the containing dense trapezoid";
  }
}

TEST(Trapmap, ConflictsMatchBruteForceOverlapScan) {
  rng r(137);
  const auto segs = wl::random_disjoint_segments(20, r);
  std::vector<segment> half;
  for (const auto& s : segs) {
    if (r.bit()) half.push_back(s);
  }
  const auto dense = make_map(segs);
  const auto sparse = make_map(half);
  for (std::size_t t = 0; t < sparse.trapezoid_count(); ++t) {
    auto got = sparse.conflicts(static_cast<int>(t), dense);
    std::sort(got.begin(), got.end());
    std::vector<int> want;
    for (std::size_t u = 0; u < dense.trapezoid_count(); ++u) {
      if (sparse.overlaps(static_cast<int>(t), dense, static_cast<int>(u))) {
        want.push_back(static_cast<int>(u));
      }
    }
    EXPECT_EQ(got, want);
  }
}

// Lemma 5: expected O(1) conflicts between a trapezoid of D(T) and D(S),
// independent of n.
TEST(Trapmap, Lemma5ExpectedConstantConflicts) {
  rng r(139);
  auto mean_conflicts = [&](std::size_t n) {
    skipweb::util::accumulator acc;
    for (int trial = 0; trial < 6; ++trial) {
      const auto segs = wl::random_disjoint_segments(n, r);
      std::vector<segment> half;
      for (const auto& s : segs) {
        if (r.bit()) half.push_back(s);
      }
      const auto dense = make_map(segs);
      const auto sparse = make_map(half);
      for (const auto& [x, y] : wl::interior_probes(50, r)) {
        const int st = sparse.locate(x, y);
        EXPECT_GE(st, 0);
        if (st < 0) continue;
        acc.add(static_cast<double>(sparse.conflicts(st, dense).size()));
      }
    }
    return acc.mean();
  };
  const double small = mean_conflicts(64);
  const double large = mean_conflicts(512);
  EXPECT_LT(large, small * 1.6 + 1.0);  // flat in n
  EXPECT_LT(large, 12.0);               // genuinely constant-sized
}

TEST(Trapmap, RejectsBadInput) {
  // Vertical segment.
  EXPECT_THROW(trapmap({segment{0.5, 0.2, 0.5, 0.8}}, 0, 1, 0, 1),
               skipweb::util::contract_error);
  // Outside the box.
  EXPECT_THROW(trapmap({segment{-0.5, 0.2, 0.5, 0.4}}, 0, 1, 0, 1),
               skipweb::util::contract_error);
  // Shared endpoint x (violates general position).
  EXPECT_THROW(trapmap({segment{0.2, 0.2, 0.5, 0.2}, segment{0.2, 0.6, 0.6, 0.6}}, 0, 1, 0, 1),
               skipweb::util::contract_error);
}

TEST(Trapmap, NormalizesSegmentOrientation) {
  trapmap m({segment{0.75, 0.5, 0.25, 0.4}}, 0, 1, 0, 1);  // given right-to-left
  EXPECT_EQ(m.trapezoid_count(), 4u);
  EXPECT_LT(m.seg(0).x1, m.seg(0).x2);
}

}  // namespace
