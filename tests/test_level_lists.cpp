#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/level_lists.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using skipweb::core::level_lists;
using skipweb::util::rng;

level_lists make(std::size_t n, std::uint64_t seed) {
  rng key_rng(seed);
  auto keys = skipweb::workloads::uniform_keys(n, key_rng);
  std::sort(keys.begin(), keys.end());
  rng r(seed + 1);
  return level_lists(std::move(keys), r, level_lists::levels_for(n));
}

// Oracle insert: find the per-level neighbours by brute force, then splice.
// Returns the arena slot, or -1 when the key is already present.
int oracle_insert(level_lists& ll, std::uint64_t key, skipweb::util::membership_bits bits) {
  for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
    if (ll.alive(i) && ll.key(i) == key) return -1;
  }
  std::vector<level_lists::neighbors> nbrs(static_cast<std::size_t>(ll.levels()) + 1);
  for (int l = 0; l <= ll.levels(); ++l) {
    int best_left = -1, best_right = -1;
    for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
      if (!ll.alive(i) || ll.prefix(i, l) != skipweb::util::prefix_of(bits, l)) continue;
      if (ll.key(i) < key && (best_left < 0 || ll.key(i) > ll.key(best_left))) best_left = i;
      if (ll.key(i) > key && (best_right < 0 || ll.key(i) < ll.key(best_right))) best_right = i;
    }
    nbrs[static_cast<std::size_t>(l)] = {best_left, best_right};
  }
  return ll.splice_in(key, bits, nbrs);
}

TEST(LevelLists, LevelsForIsCeilLog2) {
  EXPECT_EQ(level_lists::levels_for(1), 0);
  EXPECT_EQ(level_lists::levels_for(2), 1);
  EXPECT_EQ(level_lists::levels_for(3), 2);
  EXPECT_EQ(level_lists::levels_for(4), 2);
  EXPECT_EQ(level_lists::levels_for(5), 3);
  EXPECT_EQ(level_lists::levels_for(1024), 10);
  EXPECT_EQ(level_lists::levels_for(1025), 11);
}

TEST(LevelLists, LevelZeroIsOneGlobalSortedList) {
  const auto ll = make(256, 7);
  // Walk from the global head: every alive item once, in key order.
  int head = -1;
  for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
    if (ll.prev(i, 0) < 0) {
      EXPECT_EQ(head, -1) << "two heads at level 0";
      head = i;
    }
  }
  ASSERT_GE(head, 0);
  std::size_t count = 0;
  std::uint64_t last = 0;
  for (int i = head; i >= 0; i = ll.next(i, 0)) {
    if (count > 0) {
      EXPECT_GT(ll.key(i), last);
    }
    last = ll.key(i);
    ++count;
  }
  EXPECT_EQ(count, ll.size());
}

TEST(LevelLists, LevelSetsPartitionAndHalve) {
  const auto ll = make(2048, 11);
  for (int l = 1; l <= ll.levels(); ++l) {
    // Count items per prefix via direct membership; lists must agree.
    std::size_t total = 0;
    std::set<std::uint64_t> prefixes;
    for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
      prefixes.insert(ll.prefix(i, l).bits);
      ++total;
    }
    EXPECT_EQ(total, 2048u);
    // Expected set count at level l is min(2^l, n)-ish; at level 1 the two
    // sets should each hold roughly half the items.
    if (l == 1) {
      std::size_t zeros = 0;
      for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
        zeros += (ll.prefix(i, 1).bits == 0);
      }
      EXPECT_NEAR(static_cast<double>(zeros) / 2048.0, 0.5, 0.05);
    }
  }
}

TEST(LevelLists, ListsAreSortedAndPrefixConsistent) {
  const auto ll = make(512, 13);
  EXPECT_TRUE(ll.check_invariants());
}

TEST(LevelLists, TopLevelListsAreSmall) {
  const auto ll = make(4096, 17);
  // Mean size of nonempty top-level lists should be O(1) (n / 2^ceil(log n) <= 1,
  // so almost all lists are singletons).
  std::size_t max_run = 0;
  for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
    if (ll.prev(i, ll.levels()) >= 0) continue;
    std::size_t run = 0;
    for (int j = i; j >= 0; j = ll.next(j, ll.levels())) ++run;
    max_run = std::max(max_run, run);
  }
  EXPECT_LE(max_run, 12u);  // whp bound for n = 4096
}

TEST(LevelLists, SpliceInMaintainsInvariants) {
  rng r(9119);  // distinct from the workload stream: fresh keys, no replays
  auto ll = make(64, 19);
  for (int round = 0; round < 64; ++round) {
    const std::uint64_t key = r.uniform_u64(0, std::uint64_t{1} << 62);
    const auto bits = skipweb::util::draw_membership(r);
    oracle_insert(ll, key, bits);
  }
  EXPECT_EQ(ll.size(), 128u);
  EXPECT_TRUE(ll.check_invariants());
}

TEST(LevelLists, SpliceRejectsInconsistentNeighbors) {
  auto ll = make(8, 23);
  std::vector<level_lists::neighbors> nbrs(static_cast<std::size_t>(ll.levels()) + 1);
  // Claim "no neighbours at any level" while the lists are nonempty: the
  // level-0 validation cannot catch an empty claim directly (it would mean
  // inserting a second head), but a wrong left neighbour with mismatched
  // prefix must throw.
  int item0 = -1;
  for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
    if (ll.alive(i)) {
      item0 = i;
      break;
    }
  }
  ASSERT_GE(item0, 0);
  for (auto& nb : nbrs) nb = {item0, ll.next(item0, 0)};
  // Use a key smaller than item0's so "left neighbour" ordering is violated.
  const std::uint64_t bad_key = ll.key(item0) == 0 ? 0 : ll.key(item0) - 1;
  EXPECT_THROW(ll.splice_in(bad_key, 0, nbrs), skipweb::util::contract_error);
}

TEST(LevelLists, UnspliceRemovesFromEveryLevel) {
  auto ll = make(128, 29);
  // Remove half the items; invariants must hold and sizes track.
  rng r(31);
  std::vector<int> alive_items;
  for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) alive_items.push_back(i);
  std::shuffle(alive_items.begin(), alive_items.end(), r.engine());
  for (int k = 0; k < 64; ++k) ll.unsplice(alive_items[static_cast<std::size_t>(k)]);
  EXPECT_EQ(ll.size(), 64u);
  EXPECT_TRUE(ll.check_invariants());
  for (int k = 0; k < 64; ++k) {
    EXPECT_FALSE(ll.alive(alive_items[static_cast<std::size_t>(k)]));
  }
}

TEST(LevelLists, RedirectPointsAtSurvivor) {
  auto ll = make(16, 37);
  int head = -1;
  for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
    if (ll.prev(i, 0) < 0) head = i;
  }
  ASSERT_GE(head, 0);
  const int second = ll.next(head, 0);
  ll.unsplice(head);
  EXPECT_EQ(ll.redirect(head), second);
}

TEST(LevelLists, UidsAreStableAcrossReuse) {
  auto ll = make(8, 41);
  const auto uid0 = ll.uid(0);
  ll.unsplice(0);
  std::vector<level_lists::neighbors> nbrs(static_cast<std::size_t>(ll.levels()) + 1);
  // Insert a fresh item with no same-prefix neighbours claimed at upper
  // levels and correct level-0 flanks found by brute force.
  const std::uint64_t key = 1;  // workload keys are huge; 1 is fresh and smallest
  const auto bits = skipweb::util::membership_bits{0};
  for (int l = 0; l <= ll.levels(); ++l) {
    int best_right = -1;
    for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
      if (!ll.alive(i) || ll.prefix(i, l) != skipweb::util::prefix_of(bits, l)) continue;
      if (ll.key(i) > key && (best_right < 0 || ll.key(i) < ll.key(best_right))) best_right = i;
    }
    nbrs[static_cast<std::size_t>(l)] = {-1, best_right};
  }
  const int reused = ll.splice_in(key, bits, nbrs);
  EXPECT_EQ(reused, 0);             // arena slot recycled
  EXPECT_NE(ll.uid(reused), uid0);  // identity is not
}

TEST(LevelLists, ChurnRecyclesSlotsWithoutReusingUids) {
  // Randomized insert/erase churn that exercises the free list hard: the
  // arena must recycle slots (bounded growth) while uids stay unique
  // forever, and the structure must stay consistent throughout.
  constexpr std::size_t n0 = 48;
  auto ll = make(n0, 43);
  rng r(47);
  std::set<std::uint64_t> uids_seen;
  for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
    EXPECT_TRUE(uids_seen.insert(ll.uid(i)).second);
  }
  std::size_t live = n0;
  std::size_t max_live = n0;
  for (int round = 0; round < 400; ++round) {
    const bool do_insert = live <= 2 || (live < 96 && r.bit());
    if (do_insert) {
      const int slot =
          oracle_insert(ll, r.uniform_u64(0, std::uint64_t{1} << 62), skipweb::util::draw_membership(r));
      if (slot < 0) continue;  // duplicate key drawn; try again next round
      EXPECT_TRUE(uids_seen.insert(ll.uid(slot)).second)
          << "uid reused on arena slot " << slot;
      ++live;
      max_live = std::max(max_live, live);
    } else {
      // Erase a uniformly random alive item.
      std::vector<int> alive_items;
      for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
        if (ll.alive(i)) alive_items.push_back(i);
      }
      ll.unsplice(alive_items[r.index(alive_items.size())]);
      --live;
    }
    EXPECT_EQ(ll.size(), live);
  }
  // Slots were recycled: the arena never outgrew the high-water mark of live
  // items (growth only happens when the free list is empty).
  EXPECT_LE(ll.arena_size(), max_live);
  EXPECT_TRUE(ll.check_invariants());
}

TEST(LevelLists, AnyAliveStaysLiveUnderChurn) {
  auto ll = make(16, 53);
  rng r(59);
  // Drain the structure one item at a time, interleaved with the occasional
  // re-insert; any_alive() must always return an alive slot (the cached
  // hint must never go stale), and -1 exactly when empty.
  std::size_t live = 16;
  while (live > 0) {
    const int a = ll.any_alive();
    ASSERT_GE(a, 0);
    EXPECT_TRUE(ll.alive(a));
    if (live < 8 && r.index(4) == 0) {
      if (oracle_insert(ll, r.uniform_u64(0, std::uint64_t{1} << 62),
                        skipweb::util::draw_membership(r)) >= 0) {
        ++live;
        continue;
      }
    }
    // Erase the hinted item itself half the time to force hint repair.
    std::vector<int> alive_items;
    for (int i = 0; i < static_cast<int>(ll.arena_size()); ++i) {
      if (ll.alive(i)) alive_items.push_back(i);
    }
    ll.unsplice(r.bit() ? a : alive_items[r.index(alive_items.size())]);
    --live;
  }
  EXPECT_EQ(ll.any_alive(), -1);
  EXPECT_EQ(ll.size(), 0u);
}

}  // namespace
