#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "core/skipweb_1d.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workloads/workloads.h"

namespace {

using skipweb::core::skipweb_1d;
using skipweb::net::host_id;
using skipweb::net::network;
using skipweb::util::rng;
namespace wl = skipweb::workloads;

host_id h(std::uint32_t v) { return host_id{v}; }

// Shared oracle check: query every probe from a rotating origin and compare
// pred/succ against std::set.
void check_against_oracle(const skipweb_1d& web, const std::set<std::uint64_t>& oracle,
                          const std::vector<std::uint64_t>& probes, network& net) {
  std::uint32_t origin = 0;
  for (const auto q : probes) {
    const auto r = web.nearest(q, h(origin));
    origin = static_cast<std::uint32_t>((origin + 1) % net.host_count());
    auto it = oracle.upper_bound(q);
    const bool has_pred = it != oracle.begin();
    ASSERT_EQ(r.has_pred, has_pred) << "q=" << q;
    if (has_pred) EXPECT_EQ(r.pred, *std::prev(it));
    it = oracle.upper_bound(q);
    const bool has_succ = it != oracle.end();
    ASSERT_EQ(r.has_succ, has_succ) << "q=" << q;
    if (has_succ) EXPECT_EQ(r.succ, *it);
  }
}

class Skipweb1dPlacement : public ::testing::TestWithParam<skipweb_1d::placement> {};

TEST_P(Skipweb1dPlacement, NearestMatchesOracle) {
  rng r(1001);
  const auto keys = wl::uniform_keys(512, r);
  network net(GetParam() == skipweb_1d::placement::tower ? 512 : 64);
  skipweb_1d web(keys, 42, net, GetParam());
  const std::set<std::uint64_t> oracle(keys.begin(), keys.end());
  check_against_oracle(web, oracle, wl::probe_keys(keys, 300, r), net);
  // Exact hits as well.
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(web.contains(keys[i], h(static_cast<std::uint32_t>(i % net.host_count()))).value);
  }
}

TEST_P(Skipweb1dPlacement, BatchNearestMatchesSerialExactly) {
  // The interleaved batch router must be *observably identical* to serial
  // nearest() — same pred/succ and the same per-op cost receipt — for every
  // query; only wall-clock may differ. Includes batch sizes around the
  // internal chunk boundary and exact-hit probes.
  rng r(1007);
  const auto keys = wl::uniform_keys(512, r);
  network net(GetParam() == skipweb_1d::placement::tower ? 512 : 64);
  skipweb_1d web(keys, 77, net, GetParam());
  auto probes = wl::probe_keys(keys, 61, r);
  probes.push_back(keys[3]);  // exact hit
  probes.push_back(keys[400]);
  std::uint32_t origin = 0;
  for (const std::size_t take : {std::size_t{1}, std::size_t{7}, std::size_t{24}, probes.size()}) {
    const std::vector<std::uint64_t> qs(probes.begin(),
                                        probes.begin() + static_cast<std::ptrdiff_t>(take));
    const auto o = h(origin);
    origin = static_cast<std::uint32_t>((origin + 1) % net.host_count());
    const auto batch = web.nearest_batch(qs, o);
    ASSERT_EQ(batch.size(), qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      const auto serial = web.nearest(qs[i], o);
      EXPECT_EQ(batch[i].has_pred, serial.has_pred) << "i=" << i;
      EXPECT_EQ(batch[i].has_succ, serial.has_succ) << "i=" << i;
      if (serial.has_pred) EXPECT_EQ(batch[i].pred, serial.pred) << "i=" << i;
      if (serial.has_succ) EXPECT_EQ(batch[i].succ, serial.succ) << "i=" << i;
      EXPECT_EQ(batch[i].stats, serial.stats) << "i=" << i;
    }
  }
  EXPECT_TRUE(web.nearest_batch({}, h(0)).empty());
}

TEST_P(Skipweb1dPlacement, InsertThenQuery) {
  rng r(1002);
  auto keys = wl::uniform_keys(300, r);
  const std::vector<std::uint64_t> initial(keys.begin(), keys.begin() + 200);
  network net(GetParam() == skipweb_1d::placement::tower ? 200 : 32);
  skipweb_1d web(initial, 43, net, GetParam());
  std::set<std::uint64_t> oracle(initial.begin(), initial.end());

  for (std::size_t i = 200; i < 300; ++i) {
    web.insert(keys[i], h(static_cast<std::uint32_t>(i % net.host_count())));
    oracle.insert(keys[i]);
  }
  EXPECT_EQ(web.size(), 300u);
  EXPECT_TRUE(web.lists().check_invariants());
  check_against_oracle(web, oracle, wl::probe_keys(keys, 200, r), net);
}

TEST_P(Skipweb1dPlacement, EraseThenQuery) {
  rng r(1003);
  auto keys = wl::uniform_keys(300, r);
  network net(GetParam() == skipweb_1d::placement::tower ? 300 : 32);
  skipweb_1d web(keys, 44, net, GetParam());
  std::set<std::uint64_t> oracle(keys.begin(), keys.end());

  std::shuffle(keys.begin(), keys.end(), r.engine());
  for (std::size_t i = 0; i < 150; ++i) {
    web.erase(keys[i], h(static_cast<std::uint32_t>(i % net.host_count())));
    oracle.erase(keys[i]);
  }
  EXPECT_EQ(web.size(), 150u);
  EXPECT_TRUE(web.lists().check_invariants());
  check_against_oracle(web, oracle, wl::probe_keys(keys, 200, r), net);
}

TEST_P(Skipweb1dPlacement, MixedWorkloadMatchesOracle) {
  rng r(1004);
  auto pool = wl::uniform_keys(400, r);
  const std::vector<std::uint64_t> initial(pool.begin(), pool.begin() + 100);
  network net(GetParam() == skipweb_1d::placement::tower ? 100 : 24);
  skipweb_1d web(initial, 45, net, GetParam());
  std::set<std::uint64_t> oracle(initial.begin(), initial.end());

  for (int op = 0; op < 600; ++op) {
    const auto& k = pool[r.index(pool.size())];
    const auto origin = h(static_cast<std::uint32_t>(r.index(net.host_count())));
    switch (r.index(3)) {
      case 0: {
        if (oracle.count(k) == 0) {
          web.insert(k, origin);
          oracle.insert(k);
        }
        break;
      }
      case 1: {
        if (oracle.count(k) > 0 && oracle.size() >= 2) {
          web.erase(k, origin);
          oracle.erase(k);
        }
        break;
      }
      default:
        EXPECT_EQ(web.contains(k, origin).value, oracle.count(k) > 0);
    }
  }
  EXPECT_EQ(web.size(), oracle.size());
  EXPECT_TRUE(web.lists().check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Placements, Skipweb1dPlacement,
                         ::testing::Values(skipweb_1d::placement::tower,
                                           skipweb_1d::placement::balanced),
                         [](const auto& info) {
                           return info.param == skipweb_1d::placement::tower ? "Tower"
                                                                             : "Balanced";
                         });

TEST(Skipweb1d, RejectsDuplicateInsertAndMissingErase) {
  rng r(1010);
  const auto keys = wl::uniform_keys(32, r);
  network net(32);
  skipweb_1d web(keys, 46, net, skipweb_1d::placement::tower);
  EXPECT_THROW(web.insert(keys[0], h(0)), skipweb::util::contract_error);
  EXPECT_THROW(web.erase(keys[0] + 1, h(0)), skipweb::util::contract_error);
}

TEST(Skipweb1d, QueryMessagesGrowLogarithmically) {
  rng r(1011);
  auto mean_messages = [&](std::size_t n) {
    auto keys = wl::uniform_keys(n, r);
    network net(n);
    skipweb_1d web(keys, 47, net, skipweb_1d::placement::tower);
    skipweb::util::accumulator acc;
    std::uint32_t origin = 0;
    for (const auto q : wl::probe_keys(keys, 200, r)) {
      acc.add(static_cast<double>(web.nearest(q, h(origin)).stats.messages));
      origin = static_cast<std::uint32_t>((origin + 1) % n);
    }
    return acc.mean();
  };
  const double at_256 = mean_messages(256);
  const double at_4096 = mean_messages(4096);
  EXPECT_GT(at_4096, at_256);           // grows
  EXPECT_LT(at_4096, at_256 * 2.5);     // like log n, not n (16x data, ~1.5x cost)
}

TEST(Skipweb1d, TowerMemoryIsLogarithmicPerHost) {
  rng r(1012);
  const std::size_t n = 1024;
  const auto keys = wl::uniform_keys(n, r);
  network net(n);
  skipweb_1d web(keys, 48, net, skipweb_1d::placement::tower);
  // Every host stores exactly one tower: levels+1 nodes and O(levels) refs.
  const auto max_mem = net.max_memory();
  EXPECT_LE(max_mem, 6u * (static_cast<std::uint64_t>(web.levels()) + 2));
  EXPECT_GE(net.mean_memory(), static_cast<double>(web.levels()));
}

TEST(Skipweb1d, BalancedPlacementSpreadsMemory) {
  rng r(1013);
  const std::size_t n = 2048, hosts = 128;
  const auto keys = wl::uniform_keys(n, r);
  network net(hosts);
  skipweb_1d web(keys, 49, net, skipweb_1d::placement::balanced);
  // ~n(levels+1)*4/hosts memory units per host; the max should be within 2x
  // of the mean (hashing balance).
  EXPECT_LT(static_cast<double>(net.max_memory()), 1.6 * net.mean_memory());
}

TEST(Skipweb1d, SearchFromEveryOriginAgrees) {
  rng r(1014);
  const auto keys = wl::uniform_keys(128, r);
  network net(128);
  skipweb_1d web(keys, 50, net, skipweb_1d::placement::tower);
  const std::uint64_t q = wl::probe_keys(keys, 1, r)[0];
  const auto want = web.nearest(q, h(0));
  for (std::uint32_t o = 1; o < 128; o += 7) {
    const auto got = web.nearest(q, h(o));
    EXPECT_EQ(got.has_pred, want.has_pred);
    EXPECT_EQ(got.pred, want.pred);
    EXPECT_EQ(got.has_succ, want.has_succ);
    EXPECT_EQ(got.succ, want.succ);
  }
}

TEST(Skipweb1d, DeterministicForFixedSeeds) {
  rng r1(1015), r2(1015);
  const auto k1 = wl::uniform_keys(200, r1);
  const auto k2 = wl::uniform_keys(200, r2);
  network n1(200), n2(200);
  skipweb_1d w1(k1, 51, n1, skipweb_1d::placement::tower);
  skipweb_1d w2(k2, 51, n2, skipweb_1d::placement::tower);
  const auto q = k1[10] + 1;
  EXPECT_EQ(w1.nearest(q, h(3)).stats.messages, w2.nearest(q, h(3)).stats.messages);
}

TEST(Skipweb1d, SingleItemStructure) {
  network net(1);
  skipweb_1d web({42}, 52, net, skipweb_1d::placement::tower);
  const auto below = web.nearest(41, h(0));
  EXPECT_FALSE(below.has_pred);
  ASSERT_TRUE(below.has_succ);
  EXPECT_EQ(below.succ, 42u);
  const auto hit = web.nearest(42, h(0));
  ASSERT_TRUE(hit.has_pred);
  EXPECT_EQ(hit.pred, 42u);
  EXPECT_THROW(web.erase(42, h(0)), skipweb::util::contract_error);  // never empty
}

TEST(Skipweb1d, EraseOfRootAnchorStillSearchable) {
  rng r(1016);
  auto keys = wl::uniform_keys(64, r);
  network net(64);
  skipweb_1d web(keys, 53, net, skipweb_1d::placement::tower);
  // Erase the anchor items of the first few hosts, then query from them.
  std::sort(keys.begin(), keys.end());
  for (int i = 0; i < 8; ++i) web.erase(keys[static_cast<std::size_t>(i)], h(40));
  for (std::uint32_t o = 0; o < 8; ++o) {
    const auto res = web.nearest(keys[20], h(o));
    EXPECT_TRUE(res.has_pred);
    EXPECT_EQ(res.pred, keys[20]);
  }
}

}  // namespace
