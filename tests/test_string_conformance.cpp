// Conformance suite for the unified string_index API: the same contains /
// prefix / range / top-k / intersection assertions (against brute-force
// string oracles) run over every backend the string registry knows, selected
// by name. A new backend earns coverage by registering itself — no new test
// code. Built on the shared tape/oracle scaffolding of tests/oracle_common.h.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/string_registry.h"
#include "net/network.h"
#include "oracle_common.h"
#include "serve/executor.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb;
using namespace skipweb::testing_support;
using net::network;
using util::rng;
namespace wl = skipweb::workloads;

// --- brute-force oracles -----------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> oracle_prefix(const std::set<std::string>& keys,
                                       const std::string& prefix, std::size_t limit = 0) {
  std::vector<std::string> out;
  for (const auto& k : keys) {
    if (limit != 0 && out.size() >= limit) break;
    if (starts_with(k, prefix)) out.push_back(k);
  }
  return out;
}

std::vector<std::string> oracle_range(const std::set<std::string>& keys, const std::string& lo,
                                      const std::string& hi, std::size_t limit = 0) {
  std::vector<std::string> out;
  for (auto it = keys.lower_bound(lo); it != keys.end() && *it <= hi; ++it) {
    if (limit != 0 && out.size() >= limit) break;
    out.push_back(*it);
  }
  return out;
}

std::vector<std::string> oracle_top_k(const std::set<std::string>& keys,
                                      const std::string& prefix, std::size_t k) {
  auto matches = oracle_prefix(keys, prefix);
  std::sort(matches.begin(), matches.end(), [](const std::string& a, const std::string& b) {
    const auto wa = api::string_weight(a), wb = api::string_weight(b);
    return wa != wb ? wa > wb : a < b;
  });
  if (matches.size() > k) matches.resize(k);
  return matches;
}

std::vector<std::string> oracle_intersect(const std::set<std::string>& keys,
                                          const std::vector<std::string>& terms) {
  std::vector<std::string> out;
  for (const auto& k : keys) {
    const auto toks = api::string_tokens(k);
    bool all = true;
    for (const auto& t : terms) {
      all = all && std::find(toks.begin(), toks.end(), t) != toks.end();
    }
    if (all) out.push_back(k);
  }
  return out;
}

class StringConformance : public ::testing::TestWithParam<std::string> {
 protected:
  [[nodiscard]] static api::index_options options() {
    return api::index_options{}.seed(73).initial_hosts(8);
  }
  [[nodiscard]] static std::unique_ptr<api::string_index> build(
      const std::vector<std::string>& keys, network& net) {
    return api::make_string_index(GetParam(), keys, options(), net);
  }
};

TEST_P(StringConformance, RegistryBuildsTheNamedBackend) {
  rng r(7001);
  const auto keys = wl::dictionary_words(150, r);
  network net(1);
  const auto idx = build(keys, net);
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->backend(), GetParam());
  EXPECT_EQ(idx->size(), keys.size());
  EXPECT_GE(net.host_count(), 8u);  // initial_hosts honoured
  for (const auto c : {api::string_capability::contains, api::string_capability::insert,
                       api::string_capability::erase, api::string_capability::prefix,
                       api::string_capability::range, api::string_capability::top_k,
                       api::string_capability::intersect}) {
    EXPECT_TRUE(idx->supports(c));
  }
}

TEST_P(StringConformance, ContainsMatchesOracle) {
  rng r(7002);
  const auto keys = wl::url_paths(220, r);
  network net(1);
  const auto idx = build(keys, net);
  const std::set<std::string> oracle(keys.begin(), keys.end());
  std::uint32_t origin = 0;
  for (std::size_t i = 0; i < 80; ++i) {
    EXPECT_TRUE(idx->contains(keys[i], h(origin)).value) << keys[i];
    origin = static_cast<std::uint32_t>((origin + 1) % net.host_count());
  }
  // Probes derived from stored keys (mutated tail) mostly miss.
  for (std::size_t i = 0; i < 80; ++i) {
    const std::string q = keys[i] + "~";
    EXPECT_EQ(idx->contains(q, h(0)).value, oracle.count(q) > 0) << q;
  }
}

TEST_P(StringConformance, PrefixMatchAndCountMatchOracle) {
  rng r(7003);
  const auto keys = wl::url_paths(250, r);
  network net(1);
  const auto idx = build(keys, net);
  const std::set<std::string> oracle(keys.begin(), keys.end());
  const auto prefixes = wl::prefix_stream(keys, 40, 7003);
  for (const auto& p : prefixes) {
    const auto want = oracle_prefix(oracle, p);
    const auto got = idx->prefix_match(p, h(1));
    EXPECT_EQ(got.value, want) << "prefix \"" << p << "\"";
    EXPECT_EQ(idx->prefix_count(p, h(1)).value, want.size()) << "prefix \"" << p << "\"";
    EXPECT_GT(got.stats.host_visits, 0u);
  }
  // The empty prefix matches everything; limits keep the smallest matches.
  EXPECT_EQ(idx->prefix_match("", h(0)).value, oracle_prefix(oracle, ""));
  EXPECT_EQ(idx->prefix_count("", h(0)).value, oracle.size());
  EXPECT_EQ(idx->prefix_match("/", h(0), 9).value, oracle_prefix(oracle, "/", 9));
  // A prefix beyond every key matches nothing.
  EXPECT_TRUE(idx->prefix_match("~~~", h(0)).value.empty());
}

TEST_P(StringConformance, LexRangeMatchesOracle) {
  rng r(7004);
  const auto keys = wl::dictionary_words(240, r);
  network net(1);
  const auto idx = build(keys, net);
  const std::set<std::string> oracle(keys.begin(), keys.end());
  std::vector<std::string> sorted(oracle.begin(), oracle.end());
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t i = r.index(sorted.size());
    const std::size_t j = i + r.index(std::min<std::size_t>(sorted.size() - i, 40));
    const auto got = idx->lex_range(sorted[i], sorted[j], h(static_cast<std::uint32_t>(trial % 8)));
    EXPECT_EQ(got.value, oracle_range(oracle, sorted[i], sorted[j])) << "trial " << trial;
  }
  // Limits, empty windows, and the shared lo <= hi contract.
  EXPECT_EQ(idx->lex_range(sorted.front(), sorted.back(), h(0), 7).value,
            oracle_range(oracle, sorted.front(), sorted.back(), 7));
  EXPECT_TRUE(idx->lex_range(sorted.back() + "0", sorted.back() + "z", h(0)).value.empty());
  EXPECT_THROW((void)idx->lex_range("zz", "aa", h(0)), util::contract_error);
}

TEST_P(StringConformance, TopKMatchesOracle) {
  rng r(7005);
  const auto keys = wl::dictionary_words(200, r);
  network net(1);
  const auto idx = build(keys, net);
  const std::set<std::string> oracle(keys.begin(), keys.end());
  const auto prefixes = wl::prefix_stream(keys, 30, 7005);
  for (const auto& p : prefixes) {
    for (const std::size_t k : {1u, 5u, 100u}) {
      EXPECT_EQ(idx->top_k(p, k, h(2)).value, oracle_top_k(oracle, p, k))
          << "prefix \"" << p << "\" k=" << k;
    }
  }
  EXPECT_EQ(idx->top_k("", 10, h(0)).value, oracle_top_k(oracle, "", 10));
  EXPECT_THROW((void)idx->top_k("a", 0, h(0)), util::contract_error);
}

TEST_P(StringConformance, IntersectMatchesOracle) {
  rng r(7006);
  const auto keys = wl::log_lines(260, r);
  network net(1);
  const auto idx = build(keys, net);
  const std::set<std::string> oracle(keys.begin(), keys.end());
  for (int trial = 0; trial < 25; ++trial) {
    // Terms from a stored key's own tokens: non-empty answers guaranteed.
    auto terms = api::string_tokens(keys[r.index(keys.size())]);
    terms.resize(std::min<std::size_t>(terms.size(), 2 + r.index(2)));
    const auto want = oracle_intersect(oracle, terms);
    const auto got = idx->intersect(terms, h(static_cast<std::uint32_t>(trial % 8)));
    EXPECT_EQ(got.value, want) << "trial " << trial;
    EXPECT_FALSE(got.value.empty()) << "trial " << trial;
    EXPECT_GT(got.stats.messages, 0u);
    // A limit keeps a subset (posting order, not key order): still all hits.
    const auto capped = idx->intersect(terms, h(0), 2);
    EXPECT_LE(capped.value.size(), 2u);
    for (const auto& k : capped.value) {
      EXPECT_TRUE(std::find(want.begin(), want.end(), k) != want.end()) << k;
    }
  }
  // An unknown term empties every conjunction; no terms is a contract error.
  EXPECT_TRUE(idx->intersect({"info", "nosuchtoken"}, h(0)).value.empty());
  EXPECT_THROW((void)idx->intersect({}, h(0)), util::contract_error);
}

TEST_P(StringConformance, BatchMatchesSerialResultsAndReceipts) {
  rng r(7007);
  const auto keys = wl::dictionary_words(200, r);
  network net(1);
  const auto idx = build(keys, net);
  auto qs = wl::string_query_stream(keys, 60, 7007);
  for (std::size_t i = 0; i < 20; ++i) qs[i * 3] += "x";  // mix in misses

  std::vector<api::op_result<bool>> serial;
  serial.reserve(qs.size());
  for (const auto& q : qs) serial.push_back(idx->contains(q, h(2)));
  const auto batch = idx->contains_batch(qs, h(2));
  expect_batch_matches_serial(batch, serial,
                              [](std::size_t i, const api::op_result<bool>& b,
                                 const api::op_result<bool>& s) {
                                EXPECT_EQ(b.value, s.value) << i;
                                EXPECT_EQ(b.stats, s.stats) << i;
                              });
}

TEST_P(StringConformance, StatsReceiptsReconcileWithTheLedger) {
  rng r(7008);
  const auto keys = wl::url_paths(200, r);
  network net(1);
  const auto idx = build(keys, net);
  const auto qs = wl::string_query_stream(keys, 30, 7008);
  const auto prefixes = wl::prefix_stream(keys, 10, 7008);
  expect_receipts_reconcile(net, [&] {
    std::uint64_t messages = 0;
    for (const auto& q : qs) messages += idx->contains(q, h(0)).stats.messages;
    for (const auto& p : prefixes) messages += idx->prefix_match(p, h(0)).stats.messages;
    for (const auto& p : prefixes) messages += idx->top_k(p, 4, h(1)).stats.messages;
    messages += idx->intersect(api::string_tokens(keys[0]), h(0)).stats.messages;
    return messages;
  });
}

TEST_P(StringConformance, MixedTapeVsOracle) {
  // Seeded mixed insert/erase/query tape vs a std::set oracle, with the edge
  // keys the string plane owes coverage: the EMPTY key, deep shared-prefix
  // families (a key that is a strict prefix of another), and a ~512-char
  // maximal key. After every structural op the whole prefix family is
  // re-checked, so a trie that corrupts a spine mid-erase diverges
  // immediately — and the failure prints seed + minimal reproducing tape.
  rng r(7009);
  auto pool = wl::shared_prefix_strings(140, r);
  pool.emplace_back();                     // the empty key
  pool.push_back(pool[0].substr(0, 3));    // a strict prefix of a stored key
  pool.push_back(std::string(512, 'k'));   // maximal-length key
  pool.push_back(std::string(512, 'k') + "l");
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  std::shuffle(pool.begin(), pool.end(), r.engine());

  const std::size_t initial = pool.size() / 2;
  const std::vector<std::string> start(pool.begin(),
                                       pool.begin() + static_cast<std::ptrdiff_t>(initial));
  network net(1);
  const auto idx = build(start, net);
  std::set<std::string> oracle(start.begin(), start.end());

  const auto tape = make_tape<std::string>(7009, pool, initial, 300, net.host_count());
  replay_tape(
      tape,
      [&](std::size_t, const tape_row<std::string>& row) {
        switch (row.op) {
          case tape_op::insert: {
            if (!oracle.insert(row.key).second) return true;
            (void)idx->insert(row.key, h(row.origin));
            break;
          }
          case tape_op::erase:
            if (oracle.erase(row.key) == 0) return true;
            (void)idx->erase(row.key, h(row.origin));
            break;
          default: {
            if (idx->contains(row.key, h(row.origin)).value != (oracle.count(row.key) > 0)) {
              return false;
            }
            break;
          }
        }
        if (idx->size() != oracle.size()) return false;
        // The key's own 1-char prefix family stays consistent through every
        // structural change.
        const std::string p = row.key.substr(0, 1);
        return idx->prefix_match(p, h(0)).value == oracle_prefix(oracle, p);
      },
      [](const std::string& k) {
        return "\"" + (k.size() > 40 ? k.substr(0, 37) + "..." : k) + "\"";
      });
  EXPECT_EQ(idx->size(), oracle.size());
  EXPECT_EQ(idx->prefix_match("", h(0)).value,
            std::vector<std::string>(oracle.begin(), oracle.end()));
}

TEST_P(StringConformance, ExecutorContainsMatchesSerial) {
  // The multi-threaded serving driver returns the serial loop's answers and
  // receipt totals at every thread count (also the TSan job's string-plane
  // target: concurrent const queries on one instance must stay race-free).
  rng r(7010);
  const auto keys = wl::dictionary_words(300, r);
  network net(1);
  const auto idx = build(keys, net);
  auto qs = wl::string_query_stream(keys, 240, 7010);
  for (std::size_t i = 0; i < qs.size(); i += 4) qs[i] += "q";  // misses too

  std::vector<bool> want;
  api::op_stats want_total;
  for (const auto& q : qs) {
    const auto res = idx->contains(q, h(1));
    want.push_back(res.value);
    want_total += res.stats;
  }
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    serve::executor ex(threads);
    const auto out = ex.run_contains(*idx, qs, h(1));
    ASSERT_EQ(out.results.size(), qs.size()) << threads;
    for (std::size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(out.results[i].value, want[i]) << "threads " << threads << " q " << i;
    }
    EXPECT_EQ(out.total, want_total) << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStringBackends, StringConformance,
                         ::testing::ValuesIn(api::registered_string_backends()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(StringRegistry, KnowsItsBuiltins) {
  for (const char* name : {"string_skiptrie", "string_sorted"}) {
    EXPECT_TRUE(api::string_backend_known(name)) << name;
  }
  EXPECT_FALSE(api::string_backend_known("suffix_array"));
  EXPECT_GE(api::registered_string_backends().size(), 2u);
}

TEST(StringRegistry, UnknownBackendThrows) {
  rng r(7100);
  const auto keys = wl::dictionary_words(16, r);
  network net(1);
  EXPECT_THROW(
      (void)api::make_string_index("no_such_backend", keys, api::index_options{}, net),
      std::out_of_range);
}

TEST(StringRegistry, CustomBackendsCanRegister) {
  api::register_string_backend(
      "string_skiptrie_alias",
      [](std::vector<std::string> keys, const api::index_options& opts, net::network& net) {
        return api::make_string_index("string_skiptrie", std::move(keys), opts, net);
      });
  EXPECT_TRUE(api::string_backend_known("string_skiptrie_alias"));
  rng r(7101);
  const auto keys = wl::dictionary_words(64, r);
  network net(16);
  const auto idx = api::make_string_index("string_skiptrie_alias", keys, api::index_options{}, net);
  EXPECT_EQ(idx->size(), 64u);
  EXPECT_TRUE(idx->contains(keys[0], h(1)).value);
}

}  // namespace
