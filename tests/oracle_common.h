// Shared oracle-differential scaffolding for the conformance suites
// (test_api_conformance.cpp, test_spatial_conformance.cpp,
// test_string_conformance.cpp): seeded replayable operation tapes driven
// against brute-force oracles, plus the receipt-reconciliation and
// batch==serial helpers every plane repeats. A failing tape prints its seed
// and the minimal reproducing prefix, so "seed 8004, rows 0..17" is a
// complete bug report.

#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/types.h"
#include "util/rng.h"

namespace skipweb::testing_support {

inline net::host_id h(std::uint32_t v) { return net::host_id{v}; }

// --- seeded op tapes ---------------------------------------------------------

enum class tape_op : std::uint8_t { insert, erase, query };

inline const char* tape_op_name(tape_op op) {
  switch (op) {
    case tape_op::insert: return "insert";
    case tape_op::erase: return "erase";
    default: return "query";
  }
}

template <typename Key>
struct tape_row {
  tape_op op = tape_op::query;
  Key key{};
  std::uint32_t origin = 0;
};

template <typename Key>
struct op_tape {
  std::uint64_t seed = 0;
  std::vector<tape_row<Key>> rows;
};

// A seeded mixed insert/erase/query tape over `pool` (distinct keys): the
// first `initial` pool keys start present (the caller builds the index over
// exactly those), then `ops` rows roll 1/4 insert (a currently-absent pool
// key; demoted to a query when none is left), 1/4 erase (a present key,
// never below 2 so structures with a non-empty contract stay legal), 2/4
// query (any pool key — present and absent probes mixed). Origins cycle
// seeded over [0, hosts). Pure function of its arguments: the tape IS the
// reproduction recipe.
template <typename Key>
op_tape<Key> make_tape(std::uint64_t seed, const std::vector<Key>& pool, std::size_t initial,
                       std::size_t ops, std::size_t hosts) {
  EXPECT_GE(pool.size(), initial);
  EXPECT_GE(initial, 2u);
  util::rng r(seed);
  std::vector<bool> present(pool.size(), false);
  std::vector<std::size_t> present_list, absent_list;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    (i < initial ? present_list : absent_list).push_back(i);
    present[i] = i < initial;
  }
  op_tape<Key> tape;
  tape.seed = seed;
  tape.rows.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    tape_row<Key> row;
    row.origin = static_cast<std::uint32_t>(r.index(hosts));
    const std::size_t roll = r.index(4);
    if (roll == 0 && !absent_list.empty()) {
      const std::size_t j = r.index(absent_list.size());
      const std::size_t k = absent_list[j];
      absent_list[j] = absent_list.back();
      absent_list.pop_back();
      present_list.push_back(k);
      present[k] = true;
      row.op = tape_op::insert;
      row.key = pool[k];
    } else if (roll == 1 && present_list.size() > 2) {
      const std::size_t j = r.index(present_list.size());
      const std::size_t k = present_list[j];
      present_list[j] = present_list.back();
      present_list.pop_back();
      absent_list.push_back(k);
      present[k] = false;
      row.op = tape_op::erase;
      row.key = pool[k];
    } else {
      row.op = tape_op::query;
      row.key = pool[r.index(pool.size())];
    }
    tape.rows.push_back(std::move(row));
  }
  return tape;
}

// Drive a tape: `apply(i, row)` performs row i against both the index under
// test and its oracle, returning false on divergence. The first divergence
// stops the replay and reports the seed plus the minimal reproducing prefix
// (every row up to and including the failing one), rendered via `show(key)`.
template <typename Key, typename Apply, typename Show>
void replay_tape(const op_tape<Key>& tape, Apply&& apply, Show&& show) {
  for (std::size_t i = 0; i < tape.rows.size(); ++i) {
    if (apply(i, tape.rows[i])) continue;
    std::ostringstream os;
    os << "tape diverged at row " << i << " (seed " << tape.seed
       << "); minimal reproducing prefix:\n";
    for (std::size_t j = 0; j <= i; ++j) {
      os << "  [" << j << "] " << tape_op_name(tape.rows[j].op) << " "
         << show(tape.rows[j].key) << " @origin " << tape.rows[j].origin << "\n";
    }
    ADD_FAILURE() << os.str();
    return;
  }
}

// --- receipts ----------------------------------------------------------------

// The per-op receipts reconcile with the network's global traffic ledger:
// `run()` resets nothing itself, issues its ops, and returns the sum of
// their stats.messages; the ledger must agree exactly (and the sum must be
// non-trivial — a backend that forgets to meter would pass a bare EQ).
template <typename Run>
void expect_receipts_reconcile(net::network& net, Run&& run) {
  net.reset_traffic();
  const std::uint64_t messages = run();
  EXPECT_GT(messages, 0u);
  EXPECT_EQ(messages, net.total_messages());
}

// Batch == serial: same size, and every position agrees under `cmp(i, b, s)`
// (which should EXPECT_* on answers AND receipts — the batch routers'
// receipt-equality contract).
template <typename B, typename S, typename Cmp>
void expect_batch_matches_serial(const std::vector<B>& batch, const std::vector<S>& serial,
                                 Cmp&& cmp) {
  ASSERT_EQ(batch.size(), serial.size());
  for (std::size_t i = 0; i < batch.size(); ++i) cmp(i, batch[i], serial[i]);
}

}  // namespace skipweb::testing_support
