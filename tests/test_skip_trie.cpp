#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/skip_trie.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb;
using core::skip_trie;
using net::host_id;
using net::network;
using util::rng;
namespace wl = skipweb::workloads;

host_id h(std::uint32_t v) { return host_id{v}; }

TEST(SkipTrie, ContainsMatchesOracle) {
  rng r(4001);
  const auto keys = wl::random_strings(400, 2, 12, "abc", r);
  network net(400);
  skip_trie web(keys, 91, net);
  const std::set<std::string> oracle(keys.begin(), keys.end());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(web.contains(keys[i], h(static_cast<std::uint32_t>(i % 400))).value);
  }
  const auto probes = wl::random_strings(200, 2, 12, "abc", r);
  for (const auto& q : probes) {
    EXPECT_EQ(web.contains(q, h(0)).value, oracle.count(q) > 0) << q;
  }
}

TEST(SkipTrie, LongestCommonPrefixMatchesOracle) {
  rng r(4002);
  const auto keys = wl::shared_prefix_strings(300, r);
  network net(300);
  skip_trie web(keys, 92, net);
  const seq::trie oracle(keys);
  for (int trial = 0; trial < 150; ++trial) {
    std::string q = keys[r.index(keys.size())];
    // Perturb: truncate and/or extend with random digits.
    q = q.substr(0, 1 + r.index(q.size()));
    for (std::size_t i = 0; i < r.index(4); ++i) q.push_back("0123456789"[r.index(10)]);
    EXPECT_EQ(web.longest_common_prefix(q, h(static_cast<std::uint32_t>(trial % 300))).value,
              oracle.longest_common_prefix(q))
        << q;
  }
}

TEST(SkipTrie, WithPrefixMatchesOracle) {
  rng r(4003);
  const auto keys = wl::shared_prefix_strings(300, r);
  network net(300);
  skip_trie web(keys, 93, net);
  const seq::trie oracle(keys);
  for (int trial = 0; trial < 60; ++trial) {
    const std::string& base = keys[r.index(keys.size())];
    const std::string prefix = base.substr(0, 1 + r.index(base.size()));
    const auto got = web.with_prefix(prefix, h(static_cast<std::uint32_t>(trial % 300)));
    EXPECT_EQ(got.value, oracle.with_prefix(prefix)) << prefix;
    EXPECT_GT(got.stats.messages, 0u);
  }
}

TEST(SkipTrie, WithPrefixRespectsLimit) {
  rng r(4004);
  const auto keys = wl::shared_prefix_strings(200, r);
  network net(200);
  skip_trie web(keys, 94, net);
  const auto all = web.with_prefix("", h(0)).value;
  EXPECT_EQ(all.size(), 200u);
  const auto capped = web.with_prefix("", h(0), 10).value;
  EXPECT_EQ(capped.size(), 10u);
}

TEST(SkipTrie, InsertThenQuery) {
  rng r(4005);
  auto keys = wl::random_strings(300, 3, 10, "abcd", r);
  const std::vector<std::string> initial(keys.begin(), keys.begin() + 200);
  network net(200);
  skip_trie web(initial, 95, net);
  for (std::size_t i = 200; i < 300; ++i) {
    const auto stats = web.insert(keys[i], h(static_cast<std::uint32_t>(i % 200)));
    EXPECT_GT(stats.messages, 0u);
  }
  EXPECT_EQ(web.size(), 300u);
  const seq::trie oracle(keys);
  EXPECT_EQ(web.ground().node_count(), oracle.node_count());
  for (const auto& k : keys) EXPECT_TRUE(web.contains(k, h(7)).value);
  const auto probes = wl::random_strings(100, 3, 10, "abcd", r);
  const std::set<std::string> oset(keys.begin(), keys.end());
  for (const auto& q : probes) EXPECT_EQ(web.contains(q, h(1)).value, oset.count(q) > 0);
}

TEST(SkipTrie, EraseThenQuery) {
  rng r(4006);
  auto keys = wl::random_strings(300, 3, 10, "ab", r);
  network net(300);
  skip_trie web(keys, 96, net);
  std::shuffle(keys.begin(), keys.end(), r.engine());
  for (std::size_t i = 0; i < 150; ++i) {
    web.erase(keys[i], h(static_cast<std::uint32_t>(i % 300)));
  }
  EXPECT_EQ(web.size(), 150u);
  const std::vector<std::string> rest(keys.begin() + 150, keys.end());
  const seq::trie oracle(rest);
  EXPECT_EQ(web.ground().node_count(), oracle.node_count());
  for (std::size_t i = 0; i < 150; ++i) EXPECT_FALSE(web.contains(keys[i], h(4)).value);
  for (std::size_t i = 150; i < 300; ++i) EXPECT_TRUE(web.contains(keys[i], h(5)).value);
}

TEST(SkipTrie, MessagesLogarithmicOnDeepTrie) {
  // Strings forming one long chain: a, aa, aaa, ... — trie depth Θ(n), yet
  // search messages stay O(log n) (the §3.2 claim).
  std::vector<std::string> keys;
  std::string s;
  for (int i = 0; i < 128; ++i) {
    s.push_back('a');
    keys.push_back(s);
  }
  network net(128);
  skip_trie web(keys, 97, net);
  rng r(4007);
  skipweb::util::accumulator acc;
  for (int trial = 0; trial < 100; ++trial) {
    const auto& q = keys[r.index(keys.size())];
    const auto res = web.contains(q, h(static_cast<std::uint32_t>(trial % 128)));
    EXPECT_TRUE(res.value);
    acc.add(static_cast<double>(res.stats.messages));
  }
  // Depth is 128; log2(128) = 7. Allow constants, demand far below depth.
  EXPECT_LT(acc.mean(), 30.0);
}

TEST(SkipTrie, QueryMessagesGrowLogarithmically) {
  rng r(4008);
  auto mean_messages = [&](std::size_t n) {
    const auto keys = wl::random_strings(n, 4, 12, "abc", r);
    network net(n);
    skip_trie web(keys, 98, net);
    skipweb::util::accumulator acc;
    for (int trial = 0; trial < 150; ++trial) {
      const auto res = web.contains(keys[r.index(keys.size())],
                                    h(static_cast<std::uint32_t>(trial % n)));
      acc.add(static_cast<double>(res.stats.messages));
    }
    return acc.mean();
  };
  const double at_256 = mean_messages(256);
  const double at_2048 = mean_messages(2048);
  EXPECT_LT(at_2048, at_256 * 2.2);
}

TEST(SkipTrie, DnaWorkload) {
  rng r(4009);
  const auto reads = wl::dna_strings(400, 24, r);
  network net(400);
  skip_trie web(reads, 99, net);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(web.contains(reads[i], h(static_cast<std::uint32_t>(i))).value);
  }
  // Prefix query over the first 6 bases.
  const std::string probe = reads[0].substr(0, 6);
  const auto matches = web.with_prefix(probe, h(0)).value;
  EXPECT_FALSE(matches.empty());
  for (const auto& m : matches) EXPECT_EQ(m.compare(0, 6, probe), 0);
}

TEST(SkipTrie, RejectsDuplicatesAndMissing) {
  rng r(4010);
  const auto keys = wl::random_strings(64, 3, 8, "ab", r);
  network net(64);
  skip_trie web(keys, 100, net);
  EXPECT_THROW(web.insert(keys[0], h(0)), skipweb::util::contract_error);
  EXPECT_THROW(web.erase("zzzz", h(0)), skipweb::util::contract_error);
}

// Level-l key sets nested in level-(l-1), partition-by-prefix, and trie
// compression invariants must hold after arbitrary churn (the trie analogue
// of the 1-D structures' post-workload check_invariants sweeps).
TEST(SkipTrie, InvariantsSurviveChurn) {
  rng r(4011);
  auto keys = wl::shared_prefix_strings(300, r);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::shuffle(keys.begin(), keys.end(), r.engine());
  const std::size_t half = keys.size() / 2;
  const std::vector<std::string> initial(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(half));
  network net(128);
  skip_trie web(initial, 101, net);
  ASSERT_TRUE(web.check_invariants());

  for (std::size_t i = half; i < keys.size(); ++i) {
    web.insert(keys[i], h(static_cast<std::uint32_t>(i % 128)));
  }
  EXPECT_TRUE(web.check_invariants());
  for (std::size_t i = 0; i + 2 < half; i += 2) {
    web.erase(keys[i], h(static_cast<std::uint32_t>(i % 128)));
  }
  ASSERT_TRUE(web.check_invariants());
  for (const auto& k : keys) {
    const bool erased = [&] {
      for (std::size_t i = 0; i + 2 < half; i += 2) {
        if (keys[i] == k) return true;
      }
      return false;
    }();
    EXPECT_EQ(web.contains(k, h(3)).value, !erased) << k;
  }
}

}  // namespace
