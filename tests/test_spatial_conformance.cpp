// Conformance suite for the unified spatial_index API: the same locate /
// insert / erase / orthogonal_range / approx_nn assertions (against a
// brute-force scan oracle) run over every backend the spatial registry
// knows, selected by name. A new backend earns coverage by registering
// itself — no new test code.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "api/spatial_registry.h"
#include "net/network.h"
#include "oracle_common.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb;
using namespace skipweb::testing_support;
using api::spatial_box;
using api::spatial_point;
using net::host_id;
using net::network;
using util::rng;
namespace wl = skipweb::workloads;

std::vector<spatial_point> points_for(int dims, std::size_t n, rng& r, bool clustered = false) {
  return wl::spatial_points(dims, n, clustered, r);
}

spatial_point probe_for(int dims, rng& r) { return wl::spatial_probe(dims, r); }

std::vector<spatial_point> sorted(std::vector<spatial_point> pts) {
  std::sort(pts.begin(), pts.end());
  return pts;
}

class SpatialConformance : public ::testing::TestWithParam<std::string> {
 protected:
  [[nodiscard]] static api::index_options options() {
    return api::index_options{}.seed(61).initial_hosts(8);
  }
  [[nodiscard]] static int dims() { return api::spatial_backend_dims(GetParam()); }
};

TEST_P(SpatialConformance, RegistryBuildsTheNamedBackend) {
  rng r(9001);
  const auto pts = points_for(dims(), 150, r);
  network net(1);
  const auto idx = api::make_spatial_index(GetParam(), pts, options(), net);
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->backend(), GetParam());
  EXPECT_EQ(idx->dims(), dims());
  EXPECT_EQ(idx->size(), pts.size());
  EXPECT_GE(net.host_count(), 8u);  // initial_hosts honoured
  EXPECT_TRUE(idx->supports(api::spatial_capability::locate));
  EXPECT_TRUE(idx->supports(api::spatial_capability::insert));
  EXPECT_TRUE(idx->supports(api::spatial_capability::erase));
  EXPECT_TRUE(idx->supports(api::spatial_capability::orthogonal_range));
  EXPECT_TRUE(idx->supports(api::spatial_capability::approx_nn));
}

TEST_P(SpatialConformance, LocateFindsStoredAndRejectsMissing) {
  rng r(9002);
  const auto pts = points_for(dims(), 200, r);
  network net(1);
  const auto idx = api::make_spatial_index(GetParam(), pts, options(), net);
  std::uint32_t origin = 0;
  for (std::size_t i = 0; i < 80; ++i) {
    const auto res = idx->locate(pts[i], h(origin));
    origin = static_cast<std::uint32_t>((origin + 1) % net.host_count());
    EXPECT_TRUE(res.found) << "stored point " << i;
    EXPECT_GT(res.stats.host_visits, 0u);
  }
  for (int i = 0; i < 80; ++i) {
    // Random 62-bit probes never collide with stored points.
    const auto res = idx->locate(probe_for(dims(), r), h(0));
    EXPECT_FALSE(res.found) << i;
    EXPECT_GT(res.scale, 0u);
  }
}

TEST_P(SpatialConformance, LocateBatchReceiptEqualToSerial) {
  rng r(9003);
  const auto pts = points_for(dims(), 220, r);
  network net(1);
  const auto idx = api::make_spatial_index(GetParam(), pts, options(), net);
  std::vector<spatial_point> qs;
  for (int i = 0; i < 40; ++i) qs.push_back(probe_for(dims(), r));
  qs.push_back(pts[7]);  // one exact hit in the batch
  std::vector<api::spatial_locate_result> serial;
  serial.reserve(qs.size());
  for (const auto& q : qs) serial.push_back(idx->locate(q, h(3)));
  const auto batch = idx->locate_batch(qs, h(3));
  expect_batch_matches_serial(
      batch, serial,
      [](std::size_t i, const api::spatial_locate_result& b,
         const api::spatial_locate_result& s) {
        EXPECT_EQ(b.found, s.found) << i;
        EXPECT_EQ(b.cell, s.cell) << i;
        EXPECT_EQ(b.scale, s.scale) << i;
        EXPECT_EQ(b.stats.messages, s.stats.messages) << i;
        EXPECT_EQ(b.stats.host_visits, s.stats.host_visits) << i;
        EXPECT_EQ(b.stats.comparisons, s.stats.comparisons) << i;
      });
}

TEST_P(SpatialConformance, OrthogonalRangeMatchesBruteForce) {
  rng r(9004);
  const auto pts = points_for(dims(), 250, r, /*clustered=*/true);
  network net(1);
  const auto idx = api::make_spatial_index(GetParam(), pts, options(), net);
  for (int trial = 0; trial < 12; ++trial) {
    spatial_box b;
    for (int d = 0; d < dims(); ++d) {
      const auto i = static_cast<std::size_t>(d);
      const auto a1 = r.uniform_u64(0, seq::coord_span - 1);
      const auto a2 = r.uniform_u64(0, seq::coord_span - 1);
      b.lo.x[i] = std::min(a1, a2);
      b.hi.x[i] = std::max(a1, a2);
    }
    std::vector<spatial_point> want;
    for (const auto& p : pts) {
      bool in = true;
      for (int d = 0; d < dims(); ++d) {
        const auto i = static_cast<std::size_t>(d);
        in = in && p.x[i] >= b.lo.x[i] && p.x[i] <= b.hi.x[i];
      }
      if (in) want.push_back(p);
    }
    const auto got = idx->orthogonal_range(b, h(static_cast<std::uint32_t>(trial % 8)));
    EXPECT_EQ(got.value, sorted(std::move(want))) << "trial " << trial;
  }
  // Limit caps the output; a reversed box violates the shared contract.
  spatial_box all;
  for (int d = 0; d < dims(); ++d) all.hi.x[static_cast<std::size_t>(d)] = seq::coord_span - 1;
  EXPECT_EQ(idx->orthogonal_range(all, h(0), 9).value.size(), 9u);
  spatial_box bad = all;
  std::swap(bad.lo, bad.hi);
  EXPECT_THROW((void)idx->orthogonal_range(bad, h(0)), util::contract_error);
}

TEST_P(SpatialConformance, ApproxNnMatchesBruteForceDistance) {
  rng r(9005);
  const auto pts = points_for(dims(), 200, r, /*clustered=*/true);
  network net(1);
  const auto idx = api::make_spatial_index(GetParam(), pts, options(), net);
  for (int trial = 0; trial < 30; ++trial) {
    const auto q = probe_for(dims(), r);
    const auto res = idx->approx_nn(q, h(static_cast<std::uint32_t>(trial % 8)));
    api::spatial_dist2 best = ~api::spatial_dist2{0};
    for (const auto& p : pts) best = std::min(best, api::spatial_point_dist2(p, q, dims()));
    // Every current backend answers exactly (eps = 0); ties may differ.
    EXPECT_TRUE(api::spatial_point_dist2(res.value, q, dims()) == best) << "trial " << trial;
    EXPECT_GT(res.stats.host_visits, 0u);
  }
  // A stored query point is its own nearest neighbour.
  const auto self = idx->approx_nn(pts[11], h(1));
  EXPECT_TRUE(api::spatial_point_dist2(self.value, pts[11], dims()) == 0);
}

TEST_P(SpatialConformance, InsertEraseRoundTrip) {
  // Seeded mixed tape vs a std::set oracle; a divergence prints the seed and
  // the minimal reproducing op prefix (tests/oracle_common.h).
  rng r(9006);
  const auto pool = points_for(dims(), 240, r);
  const std::vector<spatial_point> initial(pool.begin(), pool.begin() + 160);
  network net(1);
  const auto idx = api::make_spatial_index(GetParam(), initial, options(), net);

  std::set<spatial_point> oracle(initial.begin(), initial.end());
  const auto tape = make_tape<spatial_point>(9006, pool, 160, 220, net.host_count());
  replay_tape(
      tape,
      [&](std::size_t, const tape_row<spatial_point>& row) {
        switch (row.op) {
          case tape_op::insert: {
            if (!oracle.insert(row.key).second) return true;
            const auto stats = idx->insert(row.key, h(row.origin));
            return stats.host_visits > 0 && idx->size() == oracle.size();
          }
          case tape_op::erase:
            if (oracle.erase(row.key) == 0) return true;
            (void)idx->erase(row.key, h(row.origin));
            return idx->size() == oracle.size();
          default:
            return idx->locate(row.key, h(row.origin)).found == (oracle.count(row.key) > 0);
        }
      },
      [&](const spatial_point& p) {
        std::string s = "(";
        for (int d = 0; d < dims(); ++d) {
          if (d > 0) s += ",";
          s += std::to_string(p.x[static_cast<std::size_t>(d)]);
        }
        return s + ")";
      });
  EXPECT_EQ(idx->size(), oracle.size());
  // Duplicates rejected on insert, absent points rejected on erase.
  EXPECT_THROW((void)idx->insert(*oracle.begin(), h(0)), util::contract_error);
  EXPECT_THROW((void)idx->erase(probe_for(dims(), r), h(0)), util::contract_error);
}

TEST_P(SpatialConformance, StatsReceiptsReconcileWithTheLedger) {
  rng r(9007);
  const auto pts = points_for(dims(), 180, r);
  network net(1);
  const auto idx = api::make_spatial_index(GetParam(), pts, options(), net);
  std::vector<spatial_point> qs;
  for (int i = 0; i < 40; ++i) qs.push_back(probe_for(dims(), r));
  expect_receipts_reconcile(net, [&] {
    std::uint64_t messages = 0;
    for (const auto& q : qs) messages += idx->locate(q, h(0)).stats.messages;
    return messages;
  });
}

INSTANTIATE_TEST_SUITE_P(AllSpatialBackends, SpatialConformance,
                         ::testing::ValuesIn(api::registered_spatial_backends()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// Regression: points sharing an exact grid coordinate (or sitting in
// adjacent grid columns, below double resolution) are legal input for every
// backend — the trapmap adapter's platform x's are salted per point so the
// trapezoidal map's distinct-endpoint-x contract survives such sets.
TEST(SpatialConformanceEdge, SharedAxisCoordinatesAreLegalEverywhere) {
  std::vector<spatial_point> pts;
  const std::uint64_t x0 = seq::coord_span / 3;
  for (std::uint64_t i = 0; i < 12; ++i) {
    spatial_point p;
    p.x[0] = x0 + (i % 3);  // three adjacent grid columns, far below double ulp
    p.x[1] = (i + 1) * (seq::coord_span / 16);
    pts.push_back(p);
  }
  for (const auto& name : api::registered_spatial_backends()) {
    if (api::spatial_backend_dims(name) != 2) continue;
    network net(8);
    const auto idx = api::make_spatial_index(name, pts, api::index_options{}.seed(5), net);
    for (const auto& p : pts) {
      EXPECT_TRUE(idx->locate(p, h(1)).found) << name;
    }
    spatial_box column;
    column.lo.x[0] = x0;
    column.hi.x[0] = x0 + 2;
    column.hi.x[1] = seq::coord_span - 1;
    EXPECT_EQ(idx->orthogonal_range(column, h(0)).value.size(), pts.size()) << name;
  }
}

TEST(SpatialRegistry, KnowsItsBuiltins) {
  for (const char* name : {"skip_quadtree2", "skip_quadtree3", "skip_trie", "skip_trapmap"}) {
    EXPECT_TRUE(api::spatial_backend_known(name)) << name;
  }
  EXPECT_FALSE(api::spatial_backend_known("rtree"));
  EXPECT_GE(api::registered_spatial_backends().size(), 4u);
  EXPECT_EQ(api::spatial_backend_dims("skip_quadtree2"), 2);
  EXPECT_EQ(api::spatial_backend_dims("skip_quadtree3"), 3);
  EXPECT_EQ(api::spatial_backend_dims("skip_trie"), 2);
  EXPECT_EQ(api::spatial_backend_dims("skip_trapmap"), 2);
}

TEST(SpatialRegistry, UnknownBackendThrows) {
  rng r(9100);
  const auto pts = points_for(2, 16, r);
  network net(1);
  EXPECT_THROW((void)api::make_spatial_index("no_such_backend", pts, api::index_options{}, net),
               std::out_of_range);
  EXPECT_THROW((void)api::spatial_backend_dims("no_such_backend"), std::out_of_range);
}

TEST(SpatialRegistry, CustomBackendsCanRegister) {
  api::register_spatial_backend(
      "skip_quadtree2_alias", 2,
      [](std::vector<spatial_point> pts, const api::index_options& opts, net::network& net) {
        return api::make_spatial_index("skip_quadtree2", std::move(pts), opts, net);
      });
  EXPECT_TRUE(api::spatial_backend_known("skip_quadtree2_alias"));
  rng r(9101);
  const auto pts = points_for(2, 64, r);
  network net(16);
  const auto idx = api::make_spatial_index("skip_quadtree2_alias", pts, api::index_options{}, net);
  EXPECT_EQ(idx->size(), 64u);
  EXPECT_TRUE(idx->locate(pts[0], h(1)).found);
}

}  // namespace
