#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "baselines/bucket_skipgraph.h"
#include "baselines/chord.h"
#include "baselines/det_skipnet.h"
#include "baselines/family_tree.h"
#include "baselines/non_skipgraph.h"
#include "baselines/skipgraph.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb;
using namespace skipweb::baselines;
using net::host_id;
using net::network;
using util::rng;
namespace wl = skipweb::workloads;

host_id h(std::uint32_t v) { return host_id{v}; }

// Generic nearest-neighbour oracle check usable for every 1-D baseline.
template <typename Structure>
void check_oracle(const Structure& s, const std::set<std::uint64_t>& oracle,
                  const std::vector<std::uint64_t>& probes, std::size_t hosts) {
  std::uint32_t origin = 0;
  for (const auto q : probes) {
    const auto r = s.nearest(q, h(origin));
    origin = static_cast<std::uint32_t>((origin + 1) % hosts);
    auto it = oracle.upper_bound(q);
    const bool has_pred = it != oracle.begin();
    ASSERT_EQ(r.has_pred, has_pred) << "q=" << q;
    if (has_pred) EXPECT_EQ(r.pred, *std::prev(it));
    const bool has_succ = it != oracle.end();
    ASSERT_EQ(r.has_succ, has_succ) << "q=" << q;
    if (has_succ) EXPECT_EQ(r.succ, *it);
  }
}

// ---------------------------------------------------------------------------
// skip graph
// ---------------------------------------------------------------------------

TEST(SkipGraph, NearestMatchesOracle) {
  rng r(6001);
  const auto keys = wl::uniform_keys(512, r);
  network net(1);
  skip_graph g(keys, 201, net);
  EXPECT_TRUE(g.check_invariants());
  check_oracle(g, std::set<std::uint64_t>(keys.begin(), keys.end()),
               wl::probe_keys(keys, 300, r), net.host_count());
}

TEST(SkipGraph, TowersAreLogarithmic) {
  rng r(6002);
  const auto keys = wl::uniform_keys(1024, r);
  network net(1);
  skip_graph g(keys, 202, net);
  EXPECT_GE(g.max_height(), 10);       // must reach ~log2 n
  EXPECT_LE(g.max_height(), 10 + 14);  // whp bound
}

TEST(SkipGraph, MixedWorkloadMatchesOracle) {
  rng r(6003);
  auto pool = wl::uniform_keys(400, r);
  const std::vector<std::uint64_t> initial(pool.begin(), pool.begin() + 128);
  network net(1);
  skip_graph g(initial, 203, net);
  std::set<std::uint64_t> oracle(initial.begin(), initial.end());
  for (int op = 0; op < 500; ++op) {
    const auto& k = pool[r.index(pool.size())];
    const auto origin = h(static_cast<std::uint32_t>(r.index(net.host_count())));
    switch (r.index(3)) {
      case 0:
        if (oracle.count(k) == 0) {
          g.insert(k, origin);
          oracle.insert(k);
        }
        break;
      case 1:
        if (oracle.count(k) > 0 && oracle.size() >= 2) {
          g.erase(k, origin);
          oracle.erase(k);
        }
        break;
      default:
        EXPECT_EQ(g.contains(k, origin).value, oracle.count(k) > 0);
    }
  }
  EXPECT_EQ(g.size(), oracle.size());
  EXPECT_TRUE(g.check_invariants());
  check_oracle(g, oracle, wl::probe_keys(pool, 150, r), net.host_count());
}

TEST(SkipGraph, QueriesGrowLogarithmically) {
  rng r(6004);
  auto mean_msgs = [&](std::size_t n) {
    const auto keys = wl::uniform_keys(n, r);
    network net(1);
    skip_graph g(keys, 204, net);
    util::accumulator acc;
    std::uint32_t o = 0;
    for (const auto q : wl::probe_keys(keys, 200, r)) {
      acc.add(static_cast<double>(g.nearest(q, h(o)).stats.messages));
      o = static_cast<std::uint32_t>((o + 1) % net.host_count());
    }
    return acc.mean();
  };
  const double at_256 = mean_msgs(256), at_4096 = mean_msgs(4096);
  EXPECT_GT(at_4096, at_256);
  EXPECT_LT(at_4096, at_256 * 2.5);
}

// ---------------------------------------------------------------------------
// NoN skip graph
// ---------------------------------------------------------------------------

TEST(NonSkipGraph, NearestMatchesOracle) {
  rng r(6011);
  const auto keys = wl::uniform_keys(512, r);
  network net(1);
  non_skip_graph g(keys, 211, net);
  check_oracle(g, std::set<std::uint64_t>(keys.begin(), keys.end()),
               wl::probe_keys(keys, 300, r), net.host_count());
}

TEST(NonSkipGraph, LookaheadBeatsPlainRouting) {
  rng r(6012);
  const std::size_t n = 4096;
  const auto keys = wl::uniform_keys(n, r);
  const auto probes = wl::probe_keys(keys, 300, r);
  network net1(1), net2(1);
  skip_graph plain(keys, 212, net1);
  non_skip_graph non(keys, 212, net2);
  util::accumulator plain_acc, non_acc;
  std::uint32_t o = 0;
  for (const auto q : probes) {
    plain_acc.add(static_cast<double>(plain.nearest(q, h(o)).stats.messages));
    non_acc.add(static_cast<double>(non.nearest(q, h(o)).stats.messages));
    o = static_cast<std::uint32_t>((o + 1) % n);
  }
  EXPECT_LT(non_acc.mean(), plain_acc.mean() * 0.75);  // clearly faster
}

TEST(NonSkipGraph, MemoryIsLogSquared) {
  rng r(6013);
  const std::size_t n = 1024;
  const auto keys = wl::uniform_keys(n, r);
  network net_plain(1), net_non(1);
  skip_graph plain(keys, 213, net_plain);
  non_skip_graph non(keys, 213, net_non);
  // NoN tables blow memory up by ~another log factor.
  EXPECT_GT(net_non.max_memory(), net_plain.max_memory() * 3);
}

TEST(NonSkipGraph, UpdatesCostMoreThanPlain) {
  rng r(6014);
  auto keys = wl::uniform_keys(600, r);
  const std::vector<std::uint64_t> initial(keys.begin(), keys.begin() + 512);
  network net1(1), net2(1);
  skip_graph plain(initial, 214, net1);
  non_skip_graph non(initial, 214, net2);
  util::accumulator plain_acc, non_acc;
  for (std::size_t i = 512; i < 600; ++i) {
    plain_acc.add(static_cast<double>(plain.insert(keys[i], h(0)).messages));
    non_acc.add(static_cast<double>(non.insert(keys[i], h(0)).messages));
  }
  EXPECT_GT(non_acc.mean(), plain_acc.mean() * 2.0);  // the log² n refresh bill
  // Both remain correct afterwards.
  const std::set<std::uint64_t> oracle(keys.begin(), keys.end());
  check_oracle(non, oracle, wl::probe_keys(keys, 100, r), net2.host_count());
}

// ---------------------------------------------------------------------------
// bucket skip graph
// ---------------------------------------------------------------------------

class BucketSkipGraphH : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BucketSkipGraphH, NearestMatchesOracle) {
  rng r(6021);
  const auto keys = wl::uniform_keys(512, r);
  network net(1);
  bucket_skip_graph g(keys, 221, net, GetParam());
  EXPECT_TRUE(g.check_invariants());
  check_oracle(g, std::set<std::uint64_t>(keys.begin(), keys.end()),
               wl::probe_keys(keys, 250, r), net.host_count());
}

TEST_P(BucketSkipGraphH, MixedWorkload) {
  rng r(6022);
  auto pool = wl::uniform_keys(300, r);
  const std::vector<std::uint64_t> initial(pool.begin(), pool.begin() + 128);
  network net(1);
  bucket_skip_graph g(initial, 222, net, GetParam());
  std::set<std::uint64_t> oracle(initial.begin(), initial.end());
  for (int op = 0; op < 300; ++op) {
    const auto& k = pool[r.index(pool.size())];
    const auto origin = h(static_cast<std::uint32_t>(r.index(net.host_count())));
    switch (r.index(3)) {
      case 0:
        if (oracle.count(k) == 0) {
          g.insert(k, origin);
          oracle.insert(k);
        }
        break;
      case 1:
        if (oracle.count(k) > 0 && oracle.size() >= 2) {
          g.erase(k, origin);
          oracle.erase(k);
        }
        break;
      default:
        EXPECT_EQ(g.contains(k, origin).value, oracle.count(k) > 0);
    }
  }
  EXPECT_TRUE(g.check_invariants());
  check_oracle(g, oracle, wl::probe_keys(pool, 100, r), net.host_count());
}

INSTANTIATE_TEST_SUITE_P(Buckets, BucketSkipGraphH, ::testing::Values(4, 16, 64),
                         [](const auto& info) { return "H" + std::to_string(info.param); });

TEST(BucketSkipGraph, FewerBucketsFewerMessages) {
  rng r(6023);
  const auto keys = wl::uniform_keys(2048, r);
  const auto probes = wl::probe_keys(keys, 200, r);
  double prev = 1e18;
  for (const std::size_t buckets : {512u, 64u, 8u}) {
    network net(1);
    bucket_skip_graph g(keys, 223, net, buckets);
    util::accumulator acc;
    for (const auto q : probes) acc.add(static_cast<double>(g.nearest(q, h(0)).stats.messages));
    EXPECT_LT(acc.mean(), prev) << buckets;
    prev = acc.mean();
  }
}

// ---------------------------------------------------------------------------
// family tree (treap substitute)
// ---------------------------------------------------------------------------

TEST(FamilyTree, NearestMatchesOracle) {
  rng r(6031);
  const auto keys = wl::uniform_keys(512, r);
  network net(1);
  family_tree t(keys, 231, net);
  EXPECT_TRUE(t.check_invariants());
  check_oracle(t, std::set<std::uint64_t>(keys.begin(), keys.end()),
               wl::probe_keys(keys, 300, r), net.host_count());
}

TEST(FamilyTree, ConstantDegree) {
  rng r(6032);
  const auto keys = wl::uniform_keys(2048, r);
  network net(1);
  family_tree t(keys, 232, net);
  // 5 structural refs + 1 root anchor + rounding: O(1), independent of n.
  EXPECT_LE(t.max_refs_per_host(), 8u);
}

TEST(FamilyTree, MixedWorkloadMatchesOracle) {
  rng r(6033);
  auto pool = wl::uniform_keys(400, r);
  const std::vector<std::uint64_t> initial(pool.begin(), pool.begin() + 128);
  network net(1);
  family_tree t(initial, 233, net);
  std::set<std::uint64_t> oracle(initial.begin(), initial.end());
  for (int op = 0; op < 400; ++op) {
    const auto& k = pool[r.index(pool.size())];
    const auto origin = h(static_cast<std::uint32_t>(r.index(net.host_count())));
    switch (r.index(3)) {
      case 0:
        if (oracle.count(k) == 0) {
          t.insert(k, origin);
          oracle.insert(k);
        }
        break;
      case 1:
        if (oracle.count(k) > 0 && oracle.size() >= 2) {
          t.erase(k, origin);
          oracle.erase(k);
        }
        break;
      default:
        EXPECT_EQ(t.contains(k, origin).value, oracle.count(k) > 0);
    }
    if (op % 100 == 0) EXPECT_TRUE(t.check_invariants());
  }
  EXPECT_TRUE(t.check_invariants());
  check_oracle(t, oracle, wl::probe_keys(pool, 150, r), net.host_count());
}

TEST(FamilyTree, QueriesGrowLogarithmically) {
  rng r(6034);
  auto mean_msgs = [&](std::size_t n) {
    const auto keys = wl::uniform_keys(n, r);
    network net(1);
    family_tree t(keys, 234, net);
    util::accumulator acc;
    std::uint32_t o = 0;
    for (const auto q : wl::probe_keys(keys, 200, r)) {
      acc.add(static_cast<double>(t.nearest(q, h(o)).stats.messages));
      o = static_cast<std::uint32_t>((o + 1) % net.host_count());
    }
    return acc.mean();
  };
  const double at_256 = mean_msgs(256), at_4096 = mean_msgs(4096);
  EXPECT_LT(at_4096, at_256 * 2.2);
}

// ---------------------------------------------------------------------------
// deterministic SkipNet
// ---------------------------------------------------------------------------

TEST(DetSkipnet, NearestMatchesOracle) {
  rng r(6041);
  const auto keys = wl::uniform_keys(512, r);
  network net(1);
  det_skipnet s(keys, net);
  check_oracle(s, std::set<std::uint64_t>(keys.begin(), keys.end()),
               wl::probe_keys(keys, 300, r), net.host_count());
}

TEST(DetSkipnet, WorstCaseSearchIsLogarithmic) {
  rng r(6042);
  for (const std::size_t n : {256u, 1024u}) {
    const auto keys = wl::uniform_keys(n, r);
    network net(1);
    det_skipnet s(keys, net);
    const double logn = std::log2(static_cast<double>(n));
    // Deterministic: the *maximum* over all keys is O(log n), no tail.
    EXPECT_LE(static_cast<double>(s.worst_case_search_messages()), 4.0 * logn) << n;
  }
}

TEST(DetSkipnet, DeterministicAcrossRuns) {
  rng r1(6043), r2(6043);
  const auto k1 = wl::uniform_keys(256, r1);
  const auto k2 = wl::uniform_keys(256, r2);
  network n1(1), n2(1);
  det_skipnet s1(k1, n1), s2(k2, n2);
  for (int i = 0; i < 50; ++i) {
    const auto q = k1[static_cast<std::size_t>(i * 5)];
    EXPECT_EQ(s1.nearest(q, h(3)).stats.messages, s2.nearest(q, h(3)).stats.messages);
  }
}

TEST(DetSkipnet, UpdatesKeepCorrectnessAcrossRebuilds) {
  rng r(6044);
  auto pool = wl::uniform_keys(500, r);
  const std::vector<std::uint64_t> initial(pool.begin(), pool.begin() + 100);
  network net(1);
  det_skipnet s(initial, net);
  std::set<std::uint64_t> oracle(initial.begin(), initial.end());
  for (std::size_t i = 100; i < 500; ++i) {  // enough updates to force rebuilds
    s.insert(pool[i], h(static_cast<std::uint32_t>(i % net.host_count())));
    oracle.insert(pool[i]);
  }
  check_oracle(s, oracle, wl::probe_keys(pool, 200, r), net.host_count());
}

// ---------------------------------------------------------------------------
// Chord
// ---------------------------------------------------------------------------

TEST(Chord, LookupFindsStoredKeys) {
  rng r(6051);
  const auto keys = wl::uniform_keys(400, r);
  network net(1);
  chord c(64, keys, 251, net);
  for (std::size_t i = 0; i < 100; ++i) {
    const auto res = c.lookup(keys[i], h(static_cast<std::uint32_t>(i % 64)));
    EXPECT_TRUE(res.found) << i;
  }
  const auto probes = wl::uniform_keys(50, r);
  for (const auto q : probes) {
    EXPECT_FALSE(c.lookup(q, h(0)).found);  // fresh random keys are absent
  }
}

TEST(Chord, LookupHopsAreLogarithmicInHosts) {
  rng r(6052);
  const auto keys = wl::uniform_keys(512, r);
  auto mean_hops = [&](std::size_t hosts) {
    network net(1);
    chord c(hosts, keys, 252, net);
    util::accumulator acc;
    for (std::size_t i = 0; i < 200; ++i) {
      acc.add(static_cast<double>(
          c.lookup(keys[i % keys.size()], h(static_cast<std::uint32_t>(i % hosts))).stats.messages));
    }
    return acc.mean();
  };
  const double at_16 = mean_hops(16), at_256 = mean_hops(256);
  EXPECT_LT(at_256, at_16 * 3.0);  // log H growth, not linear
  EXPECT_LT(at_256, 2.0 * std::log2(256.0));
}

TEST(Chord, NearestNeighbourNeedsFlooding) {
  // The motivating contrast: hashing destroys order, so NN costs H messages.
  rng r(6053);
  const auto keys = wl::uniform_keys(256, r);
  network net(1);
  chord c(128, keys, 253, net);
  std::vector<std::uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  const auto probes = wl::probe_keys(keys, 20, r);
  for (const auto q : probes) {
    const auto got = c.nearest_by_flooding(q, h(0));
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), q);
    ASSERT_NE(it, sorted.begin());
    ASSERT_TRUE(got.has_pred);
    EXPECT_EQ(got.pred, *std::prev(it));
    EXPECT_GE(got.stats.messages, 127u);  // visits essentially every host
  }
}

}  // namespace
