// Property-based parameterized sweeps (TEST_P grids over sizes, seeds and
// key distributions): the framework's correctness must be independent of the
// data, the randomness, and the memory parameter. Each property is one
// invariant checked across the whole grid.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/bucket_skipweb.h"
#include "core/level_lists.h"
#include "core/skip_quadtree.h"
#include "core/skip_trie.h"
#include "core/skipweb_1d.h"
#include "net/network.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb;
using net::host_id;
using net::network;
using util::rng;
namespace wl = skipweb::workloads;

host_id h(std::uint32_t v) { return host_id{v}; }

// --- grid: (n, seed, distribution) -----------------------------------------

enum class key_dist { uniform, clustered };

struct grid_param {
  std::size_t n;
  std::uint64_t seed;
  key_dist dist;
};

std::vector<std::uint64_t> make_keys(const grid_param& p) {
  rng r(p.seed);
  return p.dist == key_dist::uniform ? wl::uniform_keys(p.n, r) : wl::clustered_keys(p.n, r);
}

std::string grid_name(const ::testing::TestParamInfo<grid_param>& info) {
  return "n" + std::to_string(info.param.n) + "_s" + std::to_string(info.param.seed) +
         (info.param.dist == key_dist::uniform ? "_uni" : "_clu");
}

class OneDimGrid : public ::testing::TestWithParam<grid_param> {};

// Property: every probe's pred/succ matches std::set, from any origin.
TEST_P(OneDimGrid, SearchCorrectness) {
  const auto p = GetParam();
  const auto keys = make_keys(p);
  rng r(p.seed + 1);
  network net(p.n);
  core::skipweb_1d web(keys, p.seed + 2, net, core::skipweb_1d::placement::tower);
  const std::set<std::uint64_t> oracle(keys.begin(), keys.end());
  for (const auto q : wl::probe_keys(keys, 120, r)) {
    const auto res = web.nearest(q, h(static_cast<std::uint32_t>(r.index(p.n))));
    auto it = oracle.upper_bound(q);
    ASSERT_EQ(res.has_pred, it != oracle.begin());
    if (res.has_pred) ASSERT_EQ(res.pred, *std::prev(it));
    ASSERT_EQ(res.has_succ, it != oracle.end());
    if (res.has_succ) ASSERT_EQ(res.succ, *it);
  }
}

// Property: the level lists partition and halve at every level, whatever the
// key distribution (balance comes from coins, not keys).
TEST_P(OneDimGrid, LevelSetsHalve) {
  const auto p = GetParam();
  const auto keys = make_keys(p);
  rng r(p.seed + 3);
  network net(p.n);
  core::skipweb_1d web(keys, p.seed + 4, net, core::skipweb_1d::placement::tower);
  const auto& lists = web.lists();
  std::size_t level1_zero = 0;
  for (int i = 0; i < static_cast<int>(lists.arena_size()); ++i) {
    level1_zero += (lists.prefix(i, 1).bits == 0);
  }
  const double frac = static_cast<double>(level1_zero) / static_cast<double>(p.n);
  EXPECT_NEAR(frac, 0.5, 0.12);
  EXPECT_TRUE(lists.check_invariants());
}

// Property: bucket variant agrees with the tower variant query-for-query.
TEST_P(OneDimGrid, BucketAgreesWithTower) {
  const auto p = GetParam();
  const auto keys = make_keys(p);
  rng r(p.seed + 5);
  network n1(p.n), n2(1);
  core::skipweb_1d tower(keys, p.seed + 6, n1, core::skipweb_1d::placement::tower);
  core::bucket_skipweb blocked(keys, p.seed + 7, n2, 16);
  for (const auto q : wl::probe_keys(keys, 80, r)) {
    const auto a = tower.nearest(q, h(0));
    const auto b = blocked.nearest(q, h(0));
    ASSERT_EQ(a.has_pred, b.has_pred);
    if (a.has_pred) ASSERT_EQ(a.pred, b.pred);
    ASSERT_EQ(a.has_succ, b.has_succ);
    if (a.has_succ) ASSERT_EQ(a.succ, b.succ);
  }
}

// Property: churn preserves every structural invariant.
TEST_P(OneDimGrid, ChurnKeepsInvariants) {
  const auto p = GetParam();
  auto keys = make_keys(p);
  rng r(p.seed + 8);
  network net(1);
  core::bucket_skipweb web(keys, p.seed + 9, net, 16);
  std::set<std::uint64_t> oracle(keys.begin(), keys.end());
  auto fresh = wl::uniform_keys(p.n / 2, r);
  for (const auto k : fresh) {
    if (oracle.insert(k).second) web.insert(k, h(0));
  }
  std::shuffle(keys.begin(), keys.end(), r.engine());
  for (std::size_t i = 0; i < keys.size() / 2; ++i) {
    web.erase(keys[i], h(0));
    oracle.erase(keys[i]);
  }
  EXPECT_TRUE(web.lists().check_invariants());
  EXPECT_TRUE(web.check_block_invariants());
  EXPECT_EQ(web.size(), oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Grid, OneDimGrid,
                         ::testing::Values(grid_param{64, 101, key_dist::uniform},
                                           grid_param{64, 202, key_dist::clustered},
                                           grid_param{256, 303, key_dist::uniform},
                                           grid_param{256, 404, key_dist::clustered},
                                           grid_param{1024, 505, key_dist::uniform},
                                           grid_param{1024, 606, key_dist::clustered}),
                         grid_name);

// --- multi-dimensional subset property sweeps -------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property (quadtree): for any sample chain S ⊇ S' ⊇ S'' ..., every node
// cube at a sparser level exists one level denser (what identity hyperlinks
// rely on). Checked through the public locate path: distributed locate must
// match the sequential oracle everywhere.
TEST_P(SeedSweep, QuadtreeLocateMatchesOracle) {
  rng r(GetParam());
  const auto pts = wl::uniform_points<2>(300, r);
  network net(300);
  core::skip_quadtree<2> web(pts, GetParam() + 1, net);
  const seq::quadtree<2> oracle(pts);
  for (int trial = 0; trial < 80; ++trial) {
    seq::qpoint<2> q;
    for (int d = 0; d < 2; ++d) q.x[d] = r.uniform_u64(0, seq::coord_span - 1);
    ASSERT_TRUE(web.locate(q, h(static_cast<std::uint32_t>(trial % 300))).cell ==
                oracle.node(oracle.locate(q)).box);
  }
}

TEST_P(SeedSweep, TrieContainsMatchesOracle) {
  rng r(GetParam());
  const auto keys = wl::random_strings(300, 3, 12, "abc", r);
  network net(300);
  core::skip_trie web(keys, GetParam() + 2, net);
  const std::set<std::string> oracle(keys.begin(), keys.end());
  const auto probes = wl::random_strings(150, 3, 12, "abc", r);
  for (const auto& q : probes) {
    ASSERT_EQ(web.contains(q, h(7)).value, oracle.count(q) > 0) << q;
  }
  for (const auto& k : keys) {
    ASSERT_TRUE(web.contains(k, h(9)).value) << k;
  }
}

// Property: query messages never exceed a generous c·log n at any seed (the
// expected-cost theorems concentrate; this is the practical tail check).
TEST_P(SeedSweep, MessageTailsAreLogarithmic) {
  rng r(GetParam());
  const std::size_t n = 512;
  const auto keys = wl::uniform_keys(n, r);
  network net(n);
  core::skipweb_1d web(keys, GetParam() + 3, net, core::skipweb_1d::placement::tower);
  std::uint64_t worst = 0;
  for (const auto q : wl::probe_keys(keys, 200, r)) {
    worst = std::max(worst, web.nearest(q, h(static_cast<std::uint32_t>(worst % n))).stats.messages);
  }
  EXPECT_LE(worst, 8u * 9u);  // 8x log2(512): far beyond any plausible tail
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(11u, 22u, 33u, 44u, 55u),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

}  // namespace
