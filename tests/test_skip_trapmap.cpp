#include <gtest/gtest.h>

#include <vector>

#include "core/skip_trapmap.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb;
using core::skip_trapmap;
using net::host_id;
using net::network;
using util::rng;
namespace wl = skipweb::workloads;

host_id h(std::uint32_t v) { return host_id{v}; }

skip_trapmap make_web(const std::vector<seq::segment>& segs, std::uint64_t seed, network& net) {
  const auto box = wl::segment_box();
  return skip_trapmap(segs, box.xmin, box.xmax, box.ymin, box.ymax, seed, net);
}

TEST(SkipTrapmap, LocateMatchesGroundOracle) {
  rng r(5001);
  const auto segs = wl::random_disjoint_segments(128, r);
  network net(128);
  auto web = make_web(segs, 111, net);
  for (const auto& [x, y] : wl::interior_probes(300, r)) {
    const auto res = web.locate(x, y, h(static_cast<std::uint32_t>(
                                            static_cast<std::uint64_t>(x * 1e6) % 128)));
    EXPECT_EQ(res.trap, web.ground().locate(x, y)) << "(" << x << "," << y << ")";
  }
}

TEST(SkipTrapmap, SingleSegment) {
  rng r(5002);
  const auto segs = wl::random_disjoint_segments(1, r);
  network net(4);
  auto web = make_web(segs, 112, net);
  EXPECT_EQ(web.ground().trapezoid_count(), 4u);
  for (const auto& [x, y] : wl::interior_probes(50, r)) {
    EXPECT_EQ(web.locate(x, y, h(0)).trap, web.ground().locate(x, y));
  }
}

TEST(SkipTrapmap, MeanConflictsAreConstant) {
  // Lemma 5 inside the assembled structure: conflict lists stay O(1) on
  // average as n grows.
  rng r(5003);
  double prev = 0;
  for (const std::size_t n : {64u, 256u, 1024u}) {
    const auto segs = wl::random_disjoint_segments(n, r);
    network net(n);
    auto web = make_web(segs, 113, net);
    const double mean = web.mean_conflicts();
    EXPECT_LT(mean, 8.0) << "n=" << n;
    if (prev > 0) EXPECT_LT(mean, prev * 1.5 + 1.0);
    prev = mean;
  }
}

TEST(SkipTrapmap, QueryMessagesGrowLogarithmically) {
  rng r(5004);
  auto mean_messages = [&](std::size_t n) {
    const auto segs = wl::random_disjoint_segments(n, r);
    network net(n);
    auto web = make_web(segs, 114, net);
    skipweb::util::accumulator acc;
    std::uint32_t o = 0;
    for (const auto& [x, y] : wl::interior_probes(200, r)) {
      acc.add(static_cast<double>(web.locate(x, y, h(o)).stats.messages));
      o = static_cast<std::uint32_t>((o + 1) % n);
    }
    return acc.mean();
  };
  const double at_128 = mean_messages(128);
  const double at_1024 = mean_messages(1024);
  EXPECT_LT(at_1024, at_128 * 2.4);  // 8x data, log-like growth
}

TEST(SkipTrapmap, ConflictsAllMatchesPairwiseScan) {
  rng r(5005);
  const auto segs = wl::random_disjoint_segments(40, r);
  std::vector<seq::segment> half;
  for (const auto& s : segs) {
    if (r.bit()) half.push_back(s);
  }
  if (half.empty()) GTEST_SKIP();
  const auto box = wl::segment_box();
  const seq::trapmap dense(segs, box.xmin, box.xmax, box.ymin, box.ymax);
  const seq::trapmap sparse(half, box.xmin, box.xmax, box.ymin, box.ymax);
  const auto fast = skip_trapmap::conflicts_all(sparse, dense);
  ASSERT_EQ(fast.size(), sparse.trapezoid_count());
  for (std::size_t t = 0; t < sparse.trapezoid_count(); ++t) {
    auto want = sparse.conflicts(static_cast<int>(t), dense);
    std::sort(want.begin(), want.end());
    EXPECT_EQ(fast[t], want) << "trapezoid " << t;
  }
}

TEST(SkipTrapmap, MemoryPerHostIsLogarithmic) {
  rng r(5006);
  const std::size_t n = 512;
  const auto segs = wl::random_disjoint_segments(n, r);
  network net(n);
  auto web = make_web(segs, 115, net);
  // A trapezoidal map has ~3 trapezoids per segment, each carrying ~9 ledger
  // units (node + 4 neighbour refs + conflict links), so ~30 units per item
  // per level is the expected constant.
  const double mean = net.mean_memory();
  EXPECT_LT(mean, 35.0 * (static_cast<double>(web.levels()) + 1));
  EXPECT_LT(static_cast<double>(net.max_memory()), 4.0 * mean + 64.0);
}

// §4 updates: insert/erase segments, then point location must match a
// freshly built oracle everywhere.
TEST(SkipTrapmap, DynamicUpdatesMatchOracle) {
  rng r(5009);
  auto segs = wl::random_disjoint_segments(96, r);
  const std::vector<seq::segment> initial(segs.begin(), segs.begin() + 64);
  network net(96);
  auto web = make_web(initial, 118, net);

  // Insert the remaining segments one by one.
  for (std::size_t i = 64; i < segs.size(); ++i) {
    const auto stats = web.insert(segs[i], h(static_cast<std::uint32_t>(i % 96)));
    EXPECT_GT(stats.messages, 0u);
  }
  EXPECT_EQ(web.size(), segs.size());

  const auto box = wl::segment_box();
  const seq::trapmap oracle(segs, box.xmin, box.xmax, box.ymin, box.ymax);
  EXPECT_EQ(web.ground().trapezoid_count(), oracle.trapezoid_count());
  for (const auto& [x, y] : wl::interior_probes(200, r)) {
    const auto res = web.locate(x, y, h(1));
    // Compare by the bounding walls (ids differ between maps).
    const auto& got = web.ground().trap(res.trap);
    const auto& want = oracle.trap(oracle.locate(x, y));
    EXPECT_DOUBLE_EQ(got.left_x, want.left_x);
    EXPECT_DOUBLE_EQ(got.right_x, want.right_x);
  }

  // Now erase half and compare against the survivors' oracle.
  for (std::size_t i = 0; i < 48; ++i) {
    web.erase(segs[i], h(static_cast<std::uint32_t>(i % 96)));
  }
  EXPECT_EQ(web.size(), segs.size() - 48);
  const std::vector<seq::segment> rest(segs.begin() + 48, segs.end());
  const seq::trapmap oracle2(rest, box.xmin, box.xmax, box.ymin, box.ymax);
  EXPECT_EQ(web.ground().trapezoid_count(), oracle2.trapezoid_count());
  for (const auto& [x, y] : wl::interior_probes(200, r)) {
    const auto& got = web.ground().trap(web.locate(x, y, h(2)).trap);
    const auto& want = oracle2.trap(oracle2.locate(x, y));
    EXPECT_DOUBLE_EQ(got.left_x, want.left_x);
    EXPECT_DOUBLE_EQ(got.right_x, want.right_x);
  }
}

TEST(SkipTrapmap, UpdateCostIsOutputSensitiveNotLinear) {
  rng r(5010);
  auto segs = wl::random_disjoint_segments(257, r);
  const seq::segment extra = segs.back();
  segs.pop_back();
  network net(256);
  auto web = make_web(segs, 119, net);
  const auto ins_stats = web.insert(extra, h(3));
  // A segment cuts O(1) expected trapezoids per level: total O(log n), far
  // below the 3n+1 trapezoids a naive global rebuild would touch.
  EXPECT_LT(ins_stats.messages, 30u * static_cast<std::uint64_t>(web.levels() + 1));
  EXPECT_GT(ins_stats.messages, 0u);
  const auto del_stats = web.erase(extra, h(4));
  EXPECT_LT(del_stats.messages, 30u * static_cast<std::uint64_t>(web.levels() + 1));
}

TEST(SkipTrapmap, UpdateRejectsDuplicatesAndMissing) {
  rng r(5011);
  const auto segs = wl::random_disjoint_segments(16, r);
  network net(16);
  auto web = make_web(segs, 120, net);
  EXPECT_THROW(web.insert(segs[0], h(0)), skipweb::util::contract_error);
  seq::segment ghost{0.001, 0.0001, 0.002, 0.0001};
  EXPECT_THROW(web.erase(ghost, h(0)), skipweb::util::contract_error);
}

// --- degenerate inputs: the general-position boundary ------------------------
//
// The trapezoidal map's contract is general position: distinct endpoint
// x-coordinates, pairwise-disjoint non-crossing segments. The tests below
// pin the behaviour right at that boundary — collinear fragments of one
// supporting line (y-comparisons tie all along it) and polyline chains whose
// endpoints "share" a vertex up to the contract's mandatory x-perturbation —
// and assert the distributed point location still agrees with the sequential
// oracle everywhere. Inputs that break the contract outright must throw.

TEST(SkipTrapmap, CollinearFragmentsMatchOracle) {
  // 24 disjoint pieces of the single line y = 0.3 + 0.25 x.
  std::vector<seq::segment> segs;
  const double slope = 0.25, y0 = 0.3;
  double x = 0.05;
  for (int i = 0; i < 24; ++i) {
    const double x2 = x + 0.028;
    segs.push_back(seq::segment{x, y0 + slope * x, x2, y0 + slope * x2});
    x = x2 + 0.009;  // gap keeps endpoint x's distinct
  }
  network net(32);
  auto web = make_web(segs, 121, net);
  EXPECT_EQ(web.ground().trapezoid_count(), 3 * segs.size() + 1);

  rng r(5101);
  for (int i = 0; i < 300; ++i) {
    // Probes hug the shared supporting line from both sides (and probe the
    // gaps right on it), where any tie mishandling would misplace them.
    const double px = 0.021 + 0.87 * r.uniform_real();
    const double off = (i % 3 == 0 ? 1e-4 : 0.05) * (i % 2 == 0 ? 1.0 : -1.0);
    const double py = y0 + slope * px + off;
    const auto res = web.locate(px, py, h(static_cast<std::uint32_t>(i % 32)));
    EXPECT_EQ(res.trap, web.ground().locate(px, py)) << "(" << px << "," << py << ")";
  }
}

TEST(SkipTrapmap, SharedEndpointChainMatchesOracle) {
  // A zig-zag polyline whose joints are "shared endpoints" separated only by
  // the contract's x-perturbation (1e-9 — far below every other gap in the
  // input, so the map is combinatorially the shared-vertex subdivision).
  std::vector<seq::segment> segs;
  const double eps = 1e-9;
  double x = 0.06, y = 0.5;
  for (int i = 0; i < 20; ++i) {
    const double x2 = x + 0.04;
    const double y2 = 0.5 + (i % 2 == 0 ? 0.18 : -0.18);
    segs.push_back(seq::segment{x + eps, y, x2 - eps, y2});
    x = x2;
    y = y2;
  }
  network net(20);
  auto web = make_web(segs, 122, net);

  rng r(5102);
  for (int i = 0; i < 300; ++i) {
    const double px = 0.03 + 0.9 * r.uniform_real();
    const double py = 0.06 + 0.88 * r.uniform_real();
    const auto res = web.locate(px, py, h(static_cast<std::uint32_t>(i % 20)));
    EXPECT_EQ(res.trap, web.ground().locate(px, py)) << "(" << px << "," << py << ")";
  }

  // Updates at the degenerate joints keep agreeing with a fresh oracle.
  const seq::segment extra{0.05 + eps, 0.93, 0.95 - eps, 0.94};
  (void)web.insert(extra, h(3));
  auto with = segs;
  with.push_back(extra);
  const auto box = wl::segment_box();
  const seq::trapmap oracle(with, box.xmin, box.xmax, box.ymin, box.ymax);
  EXPECT_EQ(web.ground().trapezoid_count(), oracle.trapezoid_count());
  for (int i = 0; i < 100; ++i) {
    const double px = 0.03 + 0.9 * r.uniform_real();
    const double py = 0.06 + 0.88 * r.uniform_real();
    const auto& got = web.ground().trap(web.locate(px, py, h(1)).trap);
    const auto& want = oracle.trap(oracle.locate(px, py));
    EXPECT_DOUBLE_EQ(got.left_x, want.left_x);
    EXPECT_DOUBLE_EQ(got.right_x, want.right_x);
  }
}

TEST(SkipTrapmap, ExactlySharedEndpointsViolateTheContract) {
  // Two segments meeting at one vertex share an endpoint x: outside general
  // position, and the sequential oracle and the skip-web agree by throwing.
  const std::vector<seq::segment> shared{{0.1, 0.4, 0.5, 0.6}, {0.5, 0.6, 0.9, 0.4}};
  const auto box = wl::segment_box();
  EXPECT_THROW(seq::trapmap(shared, box.xmin, box.xmax, box.ymin, box.ymax),
               skipweb::util::contract_error);
  network net(8);
  EXPECT_THROW(make_web(shared, 123, net), skipweb::util::contract_error);
}

TEST(SkipTrapmap, EveryOriginFindsSameTrapezoid) {
  rng r(5007);
  const auto segs = wl::random_disjoint_segments(64, r);
  network net(64);
  auto web = make_web(segs, 116, net);
  const auto probes = wl::interior_probes(20, r);
  for (const auto& [x, y] : probes) {
    const int want = web.locate(x, y, h(0)).trap;
    for (std::uint32_t o = 1; o < 64; o += 9) {
      EXPECT_EQ(web.locate(x, y, h(o)).trap, want);
    }
  }
}

}  // namespace
