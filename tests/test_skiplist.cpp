#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "seq/skiplist.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workloads/workloads.h"

namespace {

using skipweb::seq::skiplist;
using skipweb::util::rng;

TEST(Skiplist, EmptyBehaviour) {
  skiplist<int> s{rng(1)};
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(5));
  int out = 0;
  EXPECT_FALSE(s.predecessor(5, out));
  EXPECT_FALSE(s.successor(5, out));
  EXPECT_EQ(s.tower_node_count(), 0u);
}

TEST(Skiplist, InsertContainsErase) {
  skiplist<int> s{rng(2)};
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.insert(3));
  EXPECT_TRUE(s.insert(9));
  EXPECT_FALSE(s.insert(5));  // duplicate
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(9));
  EXPECT_FALSE(s.contains(4));
  EXPECT_TRUE(s.erase(5));
  EXPECT_FALSE(s.erase(5));
  EXPECT_FALSE(s.contains(5));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Skiplist, ToVectorIsSorted) {
  skiplist<int> s{rng(3)};
  for (int k : {9, 1, 7, 3, 5}) s.insert(k);
  EXPECT_EQ(s.to_vector(), (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(Skiplist, PredecessorSuccessorSemantics) {
  skiplist<int> s{rng(4)};
  for (int k : {10, 20, 30}) s.insert(k);
  int out = 0;
  ASSERT_TRUE(s.predecessor(25, out));
  EXPECT_EQ(out, 20);
  ASSERT_TRUE(s.predecessor(20, out));
  EXPECT_EQ(out, 20);
  EXPECT_FALSE(s.predecessor(9, out));
  ASSERT_TRUE(s.successor(25, out));
  EXPECT_EQ(out, 30);
  ASSERT_TRUE(s.successor(30, out));
  EXPECT_EQ(out, 30);
  EXPECT_FALSE(s.successor(31, out));
}

// Randomized differential test against std::set across a mixed workload.
TEST(Skiplist, MatchesStdSetUnderMixedOps) {
  rng r(42);
  skiplist<std::uint64_t> s{rng(43)};
  std::set<std::uint64_t> oracle;
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t k = r.uniform_u64(0, 499);
    switch (r.index(4)) {
      case 0:
      case 1: {
        EXPECT_EQ(s.insert(k), oracle.insert(k).second);
        break;
      }
      case 2: {
        EXPECT_EQ(s.erase(k), oracle.erase(k) > 0);
        break;
      }
      default: {
        EXPECT_EQ(s.contains(k), oracle.count(k) > 0);
        std::uint64_t out = 0;
        auto it = oracle.upper_bound(k);
        const bool has_pred = it != oracle.begin();
        EXPECT_EQ(s.predecessor(k, out), has_pred);
        if (has_pred) {
          EXPECT_EQ(out, *std::prev(it));
        }
        auto su = oracle.lower_bound(k);
        EXPECT_EQ(s.successor(k, out), su != oracle.end());
        if (su != oracle.end()) {
          EXPECT_EQ(out, *su);
        }
        break;
      }
    }
    if (op % 5000 == 0) {
      EXPECT_EQ(s.size(), oracle.size());
      EXPECT_EQ(s.to_vector(), std::vector<std::uint64_t>(oracle.begin(), oracle.end()));
    }
  }
  EXPECT_EQ(s.to_vector(), std::vector<std::uint64_t>(oracle.begin(), oracle.end()));
}

// Figure 1's space claim: expected O(n) — the tower nodes sum to ~2n.
TEST(Skiplist, ExpectedSpaceIsLinear) {
  rng r(7);
  const std::size_t n = 20000;
  skiplist<std::uint64_t> s{rng(8)};
  for (auto k : skipweb::workloads::uniform_keys(n, r)) s.insert(k);
  const double per_key = static_cast<double>(s.tower_node_count()) / static_cast<double>(n);
  EXPECT_GT(per_key, 1.8);
  EXPECT_LT(per_key, 2.2);
}

// Figure 1's query claim: expected O(log n) search steps — measure the mean
// search path at two sizes and check it grows like log n, not like n.
TEST(Skiplist, SearchStepsGrowLogarithmically) {
  rng r(11);
  auto mean_steps = [&](std::size_t n) {
    skiplist<std::uint64_t> s{rng(12)};
    auto keys = skipweb::workloads::uniform_keys(n, r);
    for (auto k : keys) s.insert(k);
    skipweb::util::accumulator acc;
    for (auto q : skipweb::workloads::probe_keys(keys, 400, r)) {
      (void)s.contains(q);
      acc.add(static_cast<double>(s.last_search_steps()));
    }
    return acc.mean();
  };
  const double at_1k = mean_steps(1 << 10);
  const double at_16k = mean_steps(1 << 14);
  // log growth: 16x the data should cost ~+40% steps, far from 16x.
  EXPECT_LT(at_16k, at_1k * 2.5);
  EXPECT_GT(at_16k, at_1k);  // but it does grow
}

TEST(Skiplist, DeterministicForFixedSeeds) {
  auto build = [] {
    rng r(21);
    skiplist<std::uint64_t> s{rng(22)};
    for (auto k : skipweb::workloads::uniform_keys(500, r)) s.insert(k);
    return s.tower_node_count();
  };
  EXPECT_EQ(build(), build());
}

TEST(Skiplist, EraseEverythingLeavesCleanStructure) {
  rng r(31);
  skiplist<std::uint64_t> s{rng(32)};
  auto keys = skipweb::workloads::uniform_keys(300, r);
  for (auto k : keys) s.insert(k);
  std::shuffle(keys.begin(), keys.end(), r.engine());
  for (auto k : keys) EXPECT_TRUE(s.erase(k));
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.tower_node_count(), 0u);
  // Structure remains usable.
  EXPECT_TRUE(s.insert(1));
  EXPECT_TRUE(s.contains(1));
}

}  // namespace
