// The big-n plane's correctness contract (DESIGN.md §12): the sorted
// bulk-build fast paths must be BYTE-IDENTICAL to the reference incremental
// builds — same arenas, same uids, same answers, same cost receipts — for
// every backend that implements one, and indistinguishable through the
// registry for every backend that does not. Plus the big-n regression
// smoke: uid stability and structural invariants across arena growth,
// env-gated so CI stays fast (SKIPWEB_BIGN=1 raises n to 1M).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/spatial_registry.h"
#include "core/level_lists.h"
#include "core/skip_quadtree.h"
#include "core/skipweb_1d.h"
#include "net/network.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb;
using net::host_id;
using net::network;
using util::rng;
namespace wl = skipweb::workloads;

host_id h(std::uint32_t v) { return host_id{v}; }

// Full arena comparison: every slot's scalar record and every alive slot's
// half-link row (targets AND cached keys) at every level.
void expect_lists_identical(const core::level_lists& a, const core::level_lists& b) {
  ASSERT_EQ(a.arena_size(), b.arena_size());
  ASSERT_EQ(a.levels(), b.levels());
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < static_cast<int>(a.arena_size()); ++i) {
    ASSERT_EQ(a.alive(i), b.alive(i)) << i;
    ASSERT_EQ(a.key(i), b.key(i)) << i;
    ASSERT_EQ(a.bits(i), b.bits(i)) << i;
    ASSERT_EQ(a.uid(i), b.uid(i)) << i;
    if (!a.alive(i)) continue;
    for (int l = 0; l <= a.levels(); ++l) {
      ASSERT_EQ(a.next(i, l), b.next(i, l)) << i << " level " << l;
      ASSERT_EQ(a.prev(i, l), b.prev(i, l)) << i << " level " << l;
      ASSERT_EQ(a.next_key(i, l), b.next_key(i, l)) << i << " level " << l;
      ASSERT_EQ(a.prev_key(i, l), b.prev_key(i, l)) << i << " level " << l;
    }
  }
}

// --- layer 1: the level_lists arena itself ----------------------------------

TEST(BulkBuild, LevelListsArenaByteIdentical) {
  rng r1(4242), r2(4242);
  auto keys = wl::uniform_keys(2000, r1);
  std::sort(keys.begin(), keys.end());
  const int levels = core::level_lists::levels_for(keys.size());
  rng ra(77), rb(77);
  const core::level_lists ref(keys, ra, levels);
  const auto fast = core::level_lists::build_from_sorted(keys, rb, levels);
  expect_lists_identical(ref, fast);
  EXPECT_TRUE(fast.check_invariants());
  EXPECT_TRUE(fast.check_invariants_fast());
}

TEST(BulkBuild, ExplicitBitsOverloadByteIdentical) {
  rng r(555);
  auto keys = wl::uniform_keys(700, r);
  std::sort(keys.begin(), keys.end());
  const int levels = core::level_lists::levels_for(keys.size());
  std::vector<util::membership_bits> bits(keys.size());
  for (auto& b : bits) b = util::draw_membership(r);
  const core::level_lists ref(keys, bits, levels);
  const auto fast = core::level_lists::build_from_sorted(keys, bits, levels);
  expect_lists_identical(ref, fast);
}

// The fast-check used by the big-n smoke agrees with the quadratic reference
// check — including on structures damaged after churn-free edits.
TEST(BulkBuild, FastInvariantCheckAgreesWithReference) {
  rng r(808);
  auto keys = wl::uniform_keys(300, r);
  std::sort(keys.begin(), keys.end());
  rng rb(9);
  auto lists = core::level_lists::build_from_sorted(keys, rb, core::level_lists::levels_for(300));
  EXPECT_EQ(lists.check_invariants(), lists.check_invariants_fast());
  EXPECT_TRUE(lists.check_invariants_fast());
}

// --- layer 2: identical twins stay identical under later routed updates -----

TEST(BulkBuild, SkipwebIncrementalTwinStaysByteIdentical) {
  rng r(31337);
  auto keys = wl::uniform_keys(900, r);
  std::sort(keys.begin(), keys.end());
  // Both prefix and full set land on the same level count, so the twins and
  // the full build share geometry.
  const std::size_t m = 600;
  ASSERT_EQ(core::level_lists::levels_for(m), core::level_lists::levels_for(keys.size()));
  const std::vector<std::uint64_t> prefix(keys.begin(), keys.begin() + m);
  network net_a(64), net_b(64);
  core::skipweb_1d a(prefix, 99, net_a, core::skipweb_1d::placement::tower, 0, /*bulk=*/true);
  core::skipweb_1d b(prefix, 99, net_b, core::skipweb_1d::placement::tower, 0, /*bulk=*/false);
  expect_lists_identical(a.lists(), b.lists());
  // Routed inserts over identical state must stay identical — structure and
  // per-op receipts both.
  for (std::size_t i = m; i < keys.size(); ++i) {
    const auto origin = h(static_cast<std::uint32_t>(i % net_a.host_count()));
    const auto sa = a.insert(keys[i], origin);
    const auto sb = b.insert(keys[i], origin);
    ASSERT_EQ(sa, sb) << "insert receipt diverged at " << i;
  }
  expect_lists_identical(a.lists(), b.lists());
  ASSERT_EQ(net_a.total_memory(), net_b.total_memory());
  rng pr(606);
  for (const auto q : wl::probe_keys(keys, 200, pr)) {
    const auto ra = a.nearest(q, h(3));
    const auto rb = b.nearest(q, h(3));
    ASSERT_EQ(ra.pred, rb.pred);
    ASSERT_EQ(ra.succ, rb.succ);
    ASSERT_EQ(ra.stats, rb.stats);
  }
}

TEST(BulkBuild, QuadtreeIncrementalTwinReceiptsIdentical) {
  rng r(2718);
  const auto pts = wl::uniform_points<2>(400, r);
  const std::vector<seq::qpoint<2>> prefix(pts.begin(), pts.begin() + 300);
  network net_a(64), net_b(64);
  core::skip_quadtree<2> a(prefix, 5, net_a, 0, /*bulk=*/true);
  core::skip_quadtree<2> b(prefix, 5, net_b, 0, /*bulk=*/false);
  for (std::size_t i = 300; i < pts.size(); ++i) {
    const auto origin = h(static_cast<std::uint32_t>(i % 64));
    const auto sa = a.insert(pts[i], origin);
    const auto sb = b.insert(pts[i], origin);
    ASSERT_EQ(sa, sb) << "insert receipt diverged at " << i;
  }
  ASSERT_EQ(net_a.total_memory(), net_b.total_memory());
  EXPECT_TRUE(a.check_invariants());
  EXPECT_TRUE(b.check_invariants());
  for (int i = 0; i < 200; ++i) {
    const auto q = wl::uniform_points<2>(1, r)[0];
    const auto ra = a.locate(q, h(7));
    const auto rb = b.locate(q, h(7));
    ASSERT_EQ(ra.cell, rb.cell);
    ASSERT_EQ(ra.is_point, rb.is_point);
    ASSERT_EQ(ra.stats, rb.stats);
    const auto na = a.nearest(q, h(7));
    const auto nb = b.nearest(q, h(7));
    ASSERT_EQ(na.value, nb.value);
    ASSERT_EQ(na.stats, nb.stats);
  }
}

// --- layer 3: through the registry, for every backend ------------------------

class BulkBuildConformance : public ::testing::TestWithParam<std::string> {};

// bulk_build(true) — the default — must be indistinguishable from the
// reference build through the public surface: same answers, same receipts.
// Backends without a fast path ignore the flag, which passes trivially; the
// test still pins the option's contract for them.
TEST_P(BulkBuildConformance, ReceiptsIdenticalThroughRegistry) {
  rng r(1234);
  const auto keys = wl::uniform_keys(400, r);
  const auto base = api::index_options{}.seed(42).initial_hosts(8).bucket_size(16).buckets(24);
  network net_a(1), net_b(1);
  const auto fast = api::make_index(GetParam(), keys, api::index_options(base).bulk_build(true),
                                    net_a);
  const auto ref = api::make_index(GetParam(), keys, api::index_options(base).bulk_build(false),
                                   net_b);
  ASSERT_EQ(net_a.host_count(), net_b.host_count());
  EXPECT_EQ(net_a.total_memory(), net_b.total_memory());
  std::uint32_t origin = 0;
  rng pr(999);
  for (const auto q : wl::probe_keys(keys, 120, pr)) {
    const auto o = h(origin);
    origin = static_cast<std::uint32_t>((origin + 1) % net_a.host_count());
    const auto na = fast->nearest(q, o);
    const auto nb = ref->nearest(q, o);
    ASSERT_EQ(na.pred, nb.pred) << q;
    ASSERT_EQ(na.succ, nb.succ) << q;
    ASSERT_EQ(na.stats, nb.stats) << q;
    const auto ca = fast->contains(q, o);
    const auto cb = ref->contains(q, o);
    ASSERT_EQ(ca.value, cb.value);
    ASSERT_EQ(ca.stats, cb.stats);
  }
  const auto ra = fast->range(keys[5], keys[5] + (std::uint64_t{1} << 60), h(2), 50);
  const auto rb = ref->range(keys[5], keys[5] + (std::uint64_t{1} << 60), h(2), 50);
  EXPECT_EQ(ra.value, rb.value);
  EXPECT_EQ(ra.stats, rb.stats);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BulkBuildConformance,
                         ::testing::ValuesIn(api::registered_backends()),
                         [](const auto& info) { return info.param; });

class SpatialBulkBuildConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(SpatialBulkBuildConformance, ReceiptsIdenticalThroughRegistry) {
  rng r(4321);
  const int dims = api::spatial_backend_dims(GetParam());
  const auto pts = wl::spatial_points(dims, 200, false, r);
  const auto base = api::index_options{}.seed(17).initial_hosts(8);
  network net_a(1), net_b(1);
  const auto fast = api::make_spatial_index(GetParam(), pts,
                                            api::index_options(base).bulk_build(true), net_a);
  const auto ref = api::make_spatial_index(GetParam(), pts,
                                           api::index_options(base).bulk_build(false), net_b);
  ASSERT_EQ(net_a.host_count(), net_b.host_count());
  EXPECT_EQ(net_a.total_memory(), net_b.total_memory());
  for (int i = 0; i < 100; ++i) {
    const auto q = wl::spatial_probe(dims, r);
    const auto o = h(static_cast<std::uint32_t>(i % net_a.host_count()));
    const auto la = fast->locate(q, o);
    const auto lb = ref->locate(q, o);
    ASSERT_EQ(la.found, lb.found);
    ASSERT_EQ(la.cell, lb.cell);
    ASSERT_EQ(la.scale, lb.scale);
    ASSERT_EQ(la.stats, lb.stats);
    const auto na = fast->approx_nn(q, o);
    const auto nb = ref->approx_nn(q, o);
    ASSERT_EQ(na.value, nb.value);
    ASSERT_EQ(na.stats, nb.stats);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSpatialBackends, SpatialBulkBuildConformance,
                         ::testing::ValuesIn(api::registered_spatial_backends()),
                         [](const auto& info) { return info.param; });

// --- layer 4: the memory surface the big-n bench reports ---------------------

TEST(BulkBuild, FootprintSurfaceReportsForCoreBackends) {
  rng r(14);
  const auto keys = wl::uniform_keys(300, r);
  network net(1);
  const auto opts = api::index_options{}.seed(7).initial_hosts(8).bucket_size(16).buckets(24);
  for (const auto& name : api::registered_backends()) {
    network n2(1);
    const auto idx = api::make_index(name, keys, opts, n2);
    const auto f = idx->footprint();
    // Every registered 1-D backend implements the surface.
    EXPECT_GT(f.total_bytes(), 0u) << name;
    EXPECT_GT(f.arena_bytes, 0u) << name;
    EXPECT_GT(f.bytes_per_key(idx->size()), 0.0) << name;
  }
  for (const auto& name : api::registered_spatial_backends()) {
    rng r2(15);
    const auto pts = wl::spatial_points(api::spatial_backend_dims(name), 150, false, r2);
    network n2(1);
    const auto idx = api::make_spatial_index(name, pts, api::index_options{}.seed(7), n2);
    const auto f = idx->footprint();
    EXPECT_GT(f.total_bytes(), 0u) << name;
    EXPECT_GT(f.arena_bytes, 0u) << name;
  }
}

// --- layer 5: big-n regression smoke (env-gated) -----------------------------

// Arena growth across routed inserts must never move or re-issue a live
// slot's uid, and the structural invariants must hold at scale. Default n
// keeps CI fast; SKIPWEB_BIGN=1 raises it to the paper-scale 1M debug smoke
// (contracts on).
TEST(BulkBuildBigN, UidStabilityAndInvariantsAcrossGrowth) {
  const bool big = std::getenv("SKIPWEB_BIGN") != nullptr;
  const std::size_t n = big ? 1000000 : 20000;
  rng r(123);
  auto keys = wl::uniform_keys(n + n / 10, r);
  std::sort(keys.begin(), keys.end());
  std::vector<std::uint64_t> initial(keys.begin(), keys.begin() + n);
  // Interleave the held-out keys across the key space: erase every 10th
  // from `initial`'s tail growth set instead — simplest: hold out the keys
  // at positions ≡ 9 (mod 10) for later insertion.
  std::vector<std::uint64_t> build_keys, grow_keys;
  build_keys.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    (i % 10 == 9 ? grow_keys : build_keys).push_back(keys[i]);
  }
  network net(64);
  core::skipweb_1d idx(build_keys, 7, net, core::skipweb_1d::placement::tower, 0, /*bulk=*/true);
  const auto& lists = idx.lists();
  // Bulk build assigns uids in sorted-key order.
  ASSERT_EQ(lists.arena_size(), build_keys.size());
  for (int i = 0; i < static_cast<int>(lists.arena_size()); i += 97) {
    ASSERT_EQ(lists.uid(i), static_cast<std::uint64_t>(i));
    ASSERT_EQ(lists.key(i), build_keys[static_cast<std::size_t>(i)]);
  }
  // Record a sample of live records, grow the arena by ~10%, verify nothing
  // recorded moved: same key and same uid at the same slot.
  struct sample {
    int slot;
    std::uint64_t key, uid;
  };
  std::vector<sample> before;
  for (int i = 0; i < static_cast<int>(lists.arena_size()); i += 31) {
    before.push_back({i, lists.key(i), lists.uid(i)});
  }
  for (std::size_t i = 0; i < grow_keys.size(); ++i) {
    idx.insert(grow_keys[i], h(static_cast<std::uint32_t>(i % net.host_count())));
  }
  ASSERT_EQ(idx.size(), keys.size());
  for (const auto& s : before) {
    ASSERT_TRUE(lists.alive(s.slot));
    ASSERT_EQ(lists.key(s.slot), s.key);
    ASSERT_EQ(lists.uid(s.slot), s.uid);
  }
  // The quadratic check_invariants() is covered at small n by
  // FastInvariantCheckAgreesWithReference; here only the O(n·levels) check
  // is affordable.
  EXPECT_TRUE(lists.check_invariants_fast());
  // The footprint surface stays coherent as the arena grows.
  const auto f = idx.footprint();
  EXPECT_GT(f.arena_bytes, 0u);
  EXPECT_GT(f.link_bytes, f.arena_bytes / 4);
}

}  // namespace
