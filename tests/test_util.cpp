#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/membership.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/sw_assert.h"

namespace {

using namespace skipweb::util;

TEST(Rng, DeterministicForSameSeed) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BitIsRoughlyFair) {
  rng r(7);
  int ones = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ones += r.bit();
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.02);
}

TEST(Rng, UniformRespectsBounds) {
  rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, IndexRespectsBound) {
  rng r(11);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, SplitStreamsAreIndependentAndReproducible) {
  rng parent1(5), parent2(5);
  rng a = parent1.split(1);
  rng b = parent2.split(1);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  rng parent3(5);
  rng c = parent3.split(2);
  rng parent4(5);
  rng d = parent4.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c.next_u64() == d.next_u64());
  EXPECT_LT(equal, 4);
}

TEST(Rng, ExpectsThrowsOnBadArguments) {
  rng r(1);
  EXPECT_THROW(r.uniform_u64(5, 4), contract_error);
  EXPECT_THROW(r.index(0), contract_error);
  EXPECT_THROW(r.uniform_real(1.0, 1.0), contract_error);
}

TEST(Membership, BitExtraction) {
  const membership_bits m = 0b1011;
  EXPECT_TRUE(membership_bit(m, 0));
  EXPECT_TRUE(membership_bit(m, 1));
  EXPECT_FALSE(membership_bit(m, 2));
  EXPECT_TRUE(membership_bit(m, 3));
  EXPECT_FALSE(membership_bit(m, 63));
}

TEST(Membership, PrefixChildParentRoundTrip) {
  level_prefix root{};
  EXPECT_EQ(root.length, 0);
  const auto p01 = root.child(false).child(true);
  EXPECT_EQ(p01.length, 2);
  EXPECT_EQ(p01.bits, 0b10u);
  EXPECT_EQ(p01.parent(), root.child(false));
  EXPECT_EQ(p01.parent().parent(), root);
}

TEST(Membership, InLevelSetMatchesPrefix) {
  const membership_bits m = 0b1101;
  EXPECT_TRUE(in_level_set(m, level_prefix{}));
  EXPECT_TRUE(in_level_set(m, prefix_of(m, 4)));
  EXPECT_TRUE(in_level_set(m, level_prefix{1, 0b1}));
  EXPECT_FALSE(in_level_set(m, level_prefix{1, 0b0}));
  EXPECT_TRUE(in_level_set(m, level_prefix{3, 0b101}));
  EXPECT_FALSE(in_level_set(m, level_prefix{3, 0b001}));
}

TEST(Membership, EveryItemInExactlyOneLevelSetPerDepth) {
  rng r(13);
  for (int trial = 0; trial < 200; ++trial) {
    const membership_bits m = draw_membership(r);
    for (int depth = 1; depth <= 8; ++depth) {
      int containing = 0;
      for (std::uint64_t bits = 0; bits < (1ull << depth); ++bits) {
        containing += in_level_set(m, level_prefix{depth, bits});
      }
      EXPECT_EQ(containing, 1) << "depth " << depth;
    }
  }
}

TEST(Membership, HalvingInExpectation) {
  rng r(17);
  const int n = 20000;
  int survivors = 0;
  for (int i = 0; i < n; ++i) {
    survivors += in_level_set(draw_membership(r), level_prefix{1, 0});
  }
  EXPECT_NEAR(static_cast<double>(survivors) / n, 0.5, 0.02);
}

TEST(Stats, AccumulatorBasics) {
  accumulator a;
  for (double x : {1.0, 2.0, 3.0, 4.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_NEAR(a.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Stats, FitSlopeRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  EXPECT_NEAR(fit_slope(xs, ys), 3.0, 1e-9);
}

TEST(Stats, CorrelationDetectsLinearMatch) {
  std::vector<double> xs, ys, flat;
  for (int i = 1; i <= 16; ++i) {
    xs.push_back(std::log2(static_cast<double>(1 << i)));
    ys.push_back(2.0 * xs.back() + 1.0);
    flat.push_back(5.0);
  }
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-9);
  EXPECT_NEAR(correlation(xs, flat), 0.0, 1e-9);
}

TEST(Stats, LogOverLoglogIsSane) {
  EXPECT_NEAR(log_over_loglog(1024.0), 10.0 / std::log2(10.0), 1e-12);
  EXPECT_GT(log_over_loglog(1 << 20), log_over_loglog(1 << 10));
}

TEST(Contracts, MacrosThrowContractError) {
  EXPECT_THROW(SW_EXPECTS(false), contract_error);
  EXPECT_THROW(SW_ENSURES(1 == 2), contract_error);
  EXPECT_THROW(SW_ASSERT(false), contract_error);
  EXPECT_NO_THROW(SW_EXPECTS(true));
}

}  // namespace
