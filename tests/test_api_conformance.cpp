// Conformance suite for the unified distributed_index API: the same
// nearest / contains / insert / erase / range assertions run against every
// backend the registry knows, selected by name. A new backend earns coverage
// by registering itself — no new test code.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "api/registry.h"
#include "net/network.h"
#include "oracle_common.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb;
using namespace skipweb::testing_support;
using net::host_id;
using net::network;
using util::rng;
namespace wl = skipweb::workloads;

class ApiConformance : public ::testing::TestWithParam<std::string> {
 protected:
  [[nodiscard]] static api::index_options options() {
    // Small knobs so bucketed backends exercise several buckets/blocks.
    return api::index_options{}.seed(97).initial_hosts(8).bucket_size(16).buckets(24);
  }
};

TEST_P(ApiConformance, RegistryBuildsTheNamedBackend) {
  rng r(8001);
  const auto keys = wl::uniform_keys(200, r);
  network net(1);
  const auto idx = api::make_index(GetParam(), keys, options(), net);
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->backend(), GetParam());
  EXPECT_EQ(idx->size(), keys.size());
  EXPECT_GE(net.host_count(), 8u);  // initial_hosts honoured
}

TEST_P(ApiConformance, NearestMatchesOracle) {
  rng r(8002);
  const auto keys = wl::uniform_keys(256, r);
  network net(1);
  const auto idx = api::make_index(GetParam(), keys, options(), net);
  const std::set<std::uint64_t> oracle(keys.begin(), keys.end());
  std::uint32_t origin = 0;
  for (const auto q : wl::probe_keys(keys, 150, r)) {
    const auto res = idx->nearest(q, h(origin));
    origin = static_cast<std::uint32_t>((origin + 1) % net.host_count());
    auto it = oracle.upper_bound(q);
    const bool has_pred = it != oracle.begin();
    ASSERT_EQ(res.has_pred, has_pred) << q;
    if (has_pred) {
      EXPECT_EQ(res.pred, *std::prev(it));
    }
    const bool has_succ = it != oracle.end();
    ASSERT_EQ(res.has_succ, has_succ) << q;
    if (has_succ) {
      EXPECT_EQ(res.succ, *it);
    }
    // The receipt is coherent: a visit per hop plus the origin (backends
    // composing two routing cursors, e.g. bucket_skipgraph, count it twice).
    EXPECT_GT(res.stats.host_visits, res.stats.messages);
    EXPECT_LE(res.stats.host_visits, res.stats.messages + 2);
  }
}

TEST_P(ApiConformance, ContainsMatchesOracle) {
  rng r(8003);
  const auto keys = wl::uniform_keys(200, r);
  network net(1);
  const auto idx = api::make_index(GetParam(), keys, options(), net);
  const std::set<std::uint64_t> oracle(keys.begin(), keys.end());
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_TRUE(idx->contains(keys[i], h(static_cast<std::uint32_t>(i % net.host_count()))).value)
        << keys[i];
  }
  for (const auto q : wl::probe_keys(keys, 60, r)) {
    EXPECT_EQ(idx->contains(q, h(0)).value, oracle.count(q) > 0) << q;
  }
}

TEST_P(ApiConformance, InsertEraseRoundTrip) {
  // Seeded mixed tape vs a std::set oracle; a divergence prints the seed and
  // the minimal reproducing op prefix (tests/oracle_common.h).
  rng r(8004);
  const auto pool = wl::uniform_keys(300, r);
  const std::vector<std::uint64_t> initial(pool.begin(), pool.begin() + 200);
  network net(1);
  const auto idx = api::make_index(GetParam(), initial, options(), net);
  ASSERT_TRUE(idx->supports(api::capability::insert));
  ASSERT_TRUE(idx->supports(api::capability::erase));

  std::set<std::uint64_t> oracle(initial.begin(), initial.end());
  const auto tape = make_tape<std::uint64_t>(8004, pool, 200, 260, net.host_count());
  replay_tape(
      tape,
      [&](std::size_t, const tape_row<std::uint64_t>& row) {
        switch (row.op) {
          case tape_op::insert: {
            if (!oracle.insert(row.key).second) return true;
            const auto stats = idx->insert(row.key, h(row.origin));
            return stats.host_visits > 0 && idx->size() == oracle.size();
          }
          case tape_op::erase:
            if (oracle.erase(row.key) == 0) return true;
            (void)idx->erase(row.key, h(row.origin));
            return idx->size() == oracle.size();
          default:
            return idx->contains(row.key, h(row.origin)).value == (oracle.count(row.key) > 0);
        }
      },
      [](std::uint64_t k) { return std::to_string(k); });
  EXPECT_EQ(idx->size(), oracle.size());
}

TEST_P(ApiConformance, RangeMatchesOracle) {
  rng r(8005);
  const auto keys = wl::uniform_keys(200, r);
  network net(1);
  const auto idx = api::make_index(GetParam(), keys, options(), net);
  ASSERT_TRUE(idx->supports(api::capability::range));

  std::vector<std::uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t i = r.index(sorted.size());
    const std::size_t j = i + r.index(std::min<std::size_t>(sorted.size() - i, 30));
    const std::vector<std::uint64_t> want(sorted.begin() + static_cast<std::ptrdiff_t>(i),
                                          sorted.begin() + static_cast<std::ptrdiff_t>(j) + 1);
    const auto got = idx->range(sorted[i], sorted[j], h(0));
    EXPECT_EQ(got.value, want) << "trial " << trial;
  }
  // Limits, empty windows, and the shared lo <= hi contract.
  EXPECT_EQ(idx->range(sorted.front(), sorted.back(), h(0), 7).value.size(), 7u);
  EXPECT_TRUE(idx->range(sorted.back() + 1, sorted.back() + 50, h(0)).value.empty());
  EXPECT_THROW((void)idx->range(10, 5, h(0)), util::contract_error);
}

TEST_P(ApiConformance, BatchMatchesSerialResultsAndReceipts) {
  // The nearest_batch contract — identical results AND identical per-op cost
  // receipts to nearest() called once per query — holds for every backend:
  // the interleaved routers (skipweb1d) by construction, the baselines
  // (chord's flooding, skip_graph, det_skipnet, family_tree, ...) through
  // the default loop. Locking the baselines in here keeps a future
  // interleaved override honest.
  rng r(8007);
  const auto keys = wl::uniform_keys(220, r);
  network net(1);
  const auto idx = api::make_index(GetParam(), keys, options(), net);
  const auto qs = wl::probe_keys(keys, 70, r);

  std::vector<api::nn_result> serial;
  serial.reserve(qs.size());
  for (const auto q : qs) serial.push_back(idx->nearest(q, h(2)));
  const auto batch = idx->nearest_batch(qs, h(2));
  expect_batch_matches_serial(batch, serial,
                              [](std::size_t i, const api::nn_result& b, const api::nn_result& s) {
                                EXPECT_EQ(b.has_pred, s.has_pred) << i;
                                EXPECT_EQ(b.has_succ, s.has_succ) << i;
                                if (s.has_pred) {
                                  EXPECT_EQ(b.pred, s.pred) << i;
                                }
                                if (s.has_succ) {
                                  EXPECT_EQ(b.succ, s.succ) << i;
                                }
                                EXPECT_EQ(b.stats, s.stats) << i;
                              });
}

TEST_P(ApiConformance, StatsReceiptsAreNonTrivial) {
  rng r(8006);
  const auto keys = wl::uniform_keys(256, r);
  network net(1);
  const auto idx = api::make_index(GetParam(), keys, options(), net);
  const auto qs = wl::probe_keys(keys, 50, r);
  expect_receipts_reconcile(net, [&] {
    std::uint64_t messages = 0;
    for (const auto q : qs) messages += idx->nearest(q, h(0)).stats.messages;
    return messages;
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ApiConformance,
                         ::testing::ValuesIn(api::registered_backends()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// Registry misuse and capability edges.
TEST(ApiRegistry, UnknownBackendThrows) {
  rng r(8100);
  const auto keys = wl::uniform_keys(16, r);
  network net(1);
  EXPECT_THROW((void)api::make_index("no_such_backend", keys, api::index_options{}, net),
               std::out_of_range);
}

TEST(ApiRegistry, KnowsItsBuiltins) {
  for (const char* name : {"skipweb1d", "bucket_skipweb", "skip_graph", "non_skipgraph",
                           "bucket_skipgraph", "det_skipnet", "family_tree", "chord"}) {
    EXPECT_TRUE(api::backend_known(name)) << name;
  }
  EXPECT_FALSE(api::backend_known("btree"));
  EXPECT_GE(api::registered_backends().size(), 8u);
}

TEST(ApiRegistry, CustomBackendsCanRegister) {
  api::register_backend("skipweb1d_balanced_alias",
                        [](std::vector<std::uint64_t> keys, const api::index_options& opts,
                           net::network& net) {
                          return api::make_index(
                              "skipweb1d", std::move(keys),
                              api::index_options(opts).placement(api::placement_policy::balanced),
                              net);
                        });
  EXPECT_TRUE(api::backend_known("skipweb1d_balanced_alias"));
  rng r(8101);
  const auto keys = wl::uniform_keys(64, r);
  network net(16);
  const auto idx = api::make_index("skipweb1d_balanced_alias", keys, api::index_options{}, net);
  EXPECT_EQ(idx->size(), 64u);
  EXPECT_TRUE(idx->contains(keys[0], h(1)).value);
}

}  // namespace
