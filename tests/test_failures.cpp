// The failure plane (DESIGN.md §10): fault injection on net::network,
// replicated routing that survives dead hosts, and self-repair under churn.
// Suite names matter: the CI TSan job runs everything matching
// Failure|Repair|Churn, and RepairDaemon.* is the headline repair-racing-
// the-query-plane target.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "api/spatial_registry.h"
#include "api/string_registry.h"
#include "core/skip_quadtree.h"
#include "core/skipweb_1d.h"
#include "fault/injector.h"
#include "fault/repair.h"
#include "net/cursor.h"
#include "net/network.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace skipweb;
using core::skipweb_1d;
using net::host_id;
using net::network;
using util::rng;
namespace wl = skipweb::workloads;

host_id h(std::uint32_t v) { return host_id{v}; }

// Kill every 10th host starting at 1 (host 0 stays alive — tests issue from
// it). Returns the victims.
std::vector<host_id> kill_tenth(network& net) {
  std::vector<host_id> dead;
  for (std::uint32_t v = 1; v < net.host_count(); v += 10) {
    net.kill_host(h(v));
    dead.push_back(h(v));
  }
  return dead;
}

// The keys the structure still holds, discovered through the public surface
// (under fault routing, contains() answers against live flanks only).
std::set<std::uint64_t> surviving_keys(const skipweb_1d& web,
                                       const std::vector<std::uint64_t>& keys) {
  std::set<std::uint64_t> out;
  for (const auto k : keys) {
    if (web.contains(k, h(0)).value) out.insert(k);
  }
  return out;
}

void expect_matches_oracle(const api::nn_result& r, const std::set<std::uint64_t>& oracle,
                           std::uint64_t q) {
  auto it = oracle.upper_bound(q);
  const bool has_pred = it != oracle.begin();
  ASSERT_EQ(r.has_pred, has_pred) << "q=" << q;
  if (has_pred) EXPECT_EQ(r.pred, *std::prev(it)) << "q=" << q;
  const bool has_succ = it != oracle.end();
  ASSERT_EQ(r.has_succ, has_succ) << "q=" << q;
  if (has_succ) EXPECT_EQ(r.succ, *it) << "q=" << q;
}

// --- zero-fault identity ----------------------------------------------------

// With no fault active, building with replication(k) must not change a
// single routed answer or receipt — replication is pure redundancy, and the
// fault-aware code paths must be completely dormant. Run over every 1-D
// backend: the fault-tolerant ones prove cost-neutrality, the rest prove
// the knob is inert.
TEST(FailureFreeIdentity, ReplicationIsReceiptNeutralForEveryBackend) {
  rng r(4801);
  const auto keys = wl::uniform_keys(192, r);
  const auto probes = wl::query_stream(keys, 120, 4802);
  for (const auto& name : api::registered_backends()) {
    network plain_net(1), repl_net(1);
    const auto opts = api::index_options{}.seed(55).initial_hosts(8).bucket_size(16).buckets(24);
    const auto plain = api::make_index(name, keys, opts, plain_net);
    const auto repl =
        api::make_index(name, keys, api::index_options(opts).replication(3), repl_net);
    std::uint32_t origin = 0;
    for (const auto q : probes) {
      const auto a = plain->nearest(q, h(origin));
      const auto b = repl->nearest(q, h(origin));
      origin = static_cast<std::uint32_t>((origin + 1) % plain_net.host_count());
      ASSERT_EQ(a.has_pred, b.has_pred) << name;
      ASSERT_EQ(a.has_succ, b.has_succ) << name;
      if (a.has_pred) ASSERT_EQ(a.pred, b.pred) << name;
      if (a.has_succ) ASSERT_EQ(a.succ, b.succ) << name;
      ASSERT_EQ(a.stats, b.stats) << name << " q=" << q;  // receipts, byte for byte
      ASSERT_FALSE(b.stats.failed) << name;
    }
  }
}

TEST(FailureFreeIdentity, SpatialReplicationIsReceiptNeutralForEveryBackend) {
  rng r(4803);
  const auto pts2 = wl::spatial_points(2, 160, false, r);
  const auto pts3 = wl::spatial_points(3, 160, false, r);
  for (const auto& name : api::registered_spatial_backends()) {
    const auto& pts = api::spatial_backend_dims(name) == 3 ? pts3 : pts2;
    const auto probes =
        wl::spatial_query_stream(api::spatial_backend_dims(name), 100, 4804);
    network plain_net(1), repl_net(1);
    const auto opts = api::index_options{}.seed(56).initial_hosts(8);
    const auto plain = api::make_spatial_index(name, pts, opts, plain_net);
    const auto repl =
        api::make_spatial_index(name, pts, api::index_options(opts).replication(3), repl_net);
    std::uint32_t origin = 0;
    for (const auto& q : probes) {
      const auto a = plain->locate(q, h(origin));
      const auto b = repl->locate(q, h(origin));
      origin = static_cast<std::uint32_t>((origin + 1) % plain_net.host_count());
      ASSERT_EQ(a.found, b.found) << name;
      ASSERT_EQ(a.cell, b.cell) << name;
      ASSERT_EQ(a.scale, b.scale) << name;
      ASSERT_EQ(a.stats, b.stats) << name;
      ASSERT_FALSE(b.stats.failed) << name;
    }
  }
}

TEST(FailureFreeIdentity, StringReplicationIsReceiptNeutralForEveryBackend) {
  // The replication knob composes with the string plane without perturbing a
  // single receipt on a healthy network — for every registered text backend.
  rng r(4821);
  const auto keys = wl::url_paths(160, r);
  const auto probes = wl::string_query_stream(keys, 90, 4822);
  const auto prefixes = wl::prefix_stream(keys, 30, 4822);
  for (const auto& name : api::registered_string_backends()) {
    network plain_net(1), repl_net(1);
    const auto opts = api::index_options{}.seed(57).initial_hosts(8);
    const auto plain = api::make_string_index(name, keys, opts, plain_net);
    const auto repl =
        api::make_string_index(name, keys, api::index_options(opts).replication(3), repl_net);
    std::uint32_t origin = 0;
    for (const auto& q : probes) {
      const auto a = plain->contains(q, h(origin));
      const auto b = repl->contains(q, h(origin));
      origin = static_cast<std::uint32_t>((origin + 1) % plain_net.host_count());
      ASSERT_EQ(a.value, b.value) << name << " q=" << q;
      ASSERT_EQ(a.stats, b.stats) << name << " q=" << q;
      ASSERT_FALSE(b.stats.failed) << name;
    }
    for (const auto& p : prefixes) {
      const auto a = plain->prefix_match(p, h(0));
      const auto b = repl->prefix_match(p, h(0));
      ASSERT_EQ(a.value, b.value) << name << " p=" << p;
      ASSERT_EQ(a.stats, b.stats) << name << " p=" << p;
      const auto ta = plain->top_k(p, 4, h(0));
      const auto tb = repl->top_k(p, 4, h(0));
      ASSERT_EQ(ta.value, tb.value) << name << " p=" << p;
      ASSERT_EQ(ta.stats, tb.stats) << name << " p=" << p;
    }
    const auto terms = api::string_tokens(keys[5]);
    ASSERT_EQ(plain->intersect(terms, h(0)).value, repl->intersect(terms, h(0)).value) << name;
  }
}

TEST(FailureFreeIdentity, CapabilityAdvertisedOnlyWhenReplicated) {
  rng r(4805);
  const auto keys = wl::uniform_keys(64, r);
  network n1(1), n2(1);
  const auto plain = api::make_index("skipweb1d", keys, api::index_options{}.seed(5), n1);
  const auto repl =
      api::make_index("skipweb1d", keys, api::index_options{}.seed(5).replication(2), n2);
  EXPECT_FALSE(plain->supports(api::capability::fault_tolerant));
  EXPECT_TRUE(repl->supports(api::capability::fault_tolerant));
  EXPECT_THROW((void)plain->repair_step(h(0)), api::unsupported_operation);

  const auto pts = wl::spatial_points(2, 64, false, r);
  network n3(1), n4(1);
  const auto splain = api::make_spatial_index("skip_quadtree2", pts, api::index_options{}.seed(6), n3);
  const auto srepl = api::make_spatial_index("skip_quadtree2", pts,
                                             api::index_options{}.seed(6).replication(2), n4);
  EXPECT_FALSE(splain->supports(api::spatial_capability::fault_tolerant));
  EXPECT_TRUE(srepl->supports(api::spatial_capability::fault_tolerant));
  EXPECT_THROW((void)splain->repair_step(h(0)), api::unsupported_operation);
}

// --- fault injection on the network itself ----------------------------------

TEST(FailureInjection, KillReviveAndProfileSkipDeadHosts) {
  network net(6);
  // Record some traffic so the profile has something to report; alternating
  // hops make host 5 unambiguously the busiest.
  {
    net::cursor cur(net, h(0));
    cur.move_to(h(5));
    cur.move_to(h(1));
    cur.move_to(h(5));
    cur.move_to(h(2));
    cur.move_to(h(5));
  }
  const auto before = net.congestion_profile();
  EXPECT_EQ(before.hosts, 6u);
  EXPECT_EQ(before.hosts_killed, 0u);

  net.kill_host(h(5));
  EXPECT_FALSE(net.host_alive(h(5)));
  EXPECT_EQ(net.live_host_count(), 5u);
  const auto after = net.congestion_profile();
  EXPECT_EQ(after.hosts, 5u);
  EXPECT_EQ(after.hosts_killed, 1u);
  // The dead slot leaves the live aggregates but not the grand total: the
  // ledger still reconciles with total_messages().
  EXPECT_EQ(after.total_visits, before.total_visits);
  EXPECT_LT(after.max_visits, before.max_visits);

  net.revive_host(h(5));
  EXPECT_TRUE(net.host_alive(h(5)));
  EXPECT_EQ(net.congestion_profile().hosts, 6u);
  EXPECT_FALSE(net.faults_active());
}

TEST(FailureInjection, PartitionsCutReachabilityWithoutKilling) {
  network net(4);
  EXPECT_TRUE(net.reachable(h(0), h(3)));
  net.set_partitions({{h(0), h(1)}, {h(2), h(3)}});
  EXPECT_TRUE(net.faults_active());
  EXPECT_TRUE(net.reachable(h(0), h(1)));
  EXPECT_FALSE(net.reachable(h(1), h(2)));
  EXPECT_TRUE(net.host_alive(h(2)));  // partitioned, not dead
  net.clear_partitions();
  EXPECT_FALSE(net.faults_active());
  EXPECT_TRUE(net.reachable(h(1), h(2)));
}

TEST(FailureInjection, MessageLossIsChargedAndDeterministic) {
  rng r(4811);
  const auto keys = wl::uniform_keys(128, r);
  const auto probes = wl::query_stream(keys, 60, 4812);

  network net(static_cast<std::size_t>(keys.size()));
  skipweb_1d web(keys, 7, net, skipweb_1d::placement::tower);
  std::vector<api::op_stats> clean;
  for (const auto q : probes) clean.push_back(web.nearest(q, h(0)).stats);

  net.set_message_loss(0.25, 99);
  EXPECT_TRUE(net.faults_active());
  const std::set<std::uint64_t> oracle(keys.begin(), keys.end());
  std::uint64_t lost_retries = 0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto a = web.nearest(probes[i], h(0));
    const auto b = web.nearest(probes[i], h(0));
    expect_matches_oracle(a, oracle, probes[i]);  // retries never change answers
    EXPECT_EQ(a.stats, b.stats);                  // loss draws are replayable
    EXPECT_GE(a.stats.messages, clean[i].messages);
    lost_retries += a.stats.messages - clean[i].messages;
  }
  EXPECT_GT(lost_retries, 0u);  // at p = 0.25 some attempt was dropped
  net.set_message_loss(0.0, 0);
  EXPECT_FALSE(net.faults_active());
}

TEST(FailureInjection, StringMessageLossIsChargedAndDeterministic) {
  // Text ops ride the same priced cursor plane, so lossy links surface the
  // same way: answers never change, receipts grow by the replayable retries.
  rng r(4815);
  const auto keys = wl::dictionary_words(150, r);
  const auto probes = wl::string_query_stream(keys, 50, 4816);
  const auto prefixes = wl::prefix_stream(keys, 15, 4816);

  for (const auto& name : api::registered_string_backends()) {
    network net(1);
    const auto idx = api::make_string_index(
        name, keys, api::index_options{}.seed(58).initial_hosts(8), net);
    std::vector<api::op_stats> clean;
    std::vector<bool> clean_hits;
    for (const auto& q : probes) {
      const auto res = idx->contains(q, h(0));
      clean.push_back(res.stats);
      clean_hits.push_back(res.value);
    }
    std::vector<std::vector<std::string>> clean_prefix;
    for (const auto& p : prefixes) clean_prefix.push_back(idx->prefix_match(p, h(0)).value);

    net.set_message_loss(0.25, 99);
    EXPECT_TRUE(net.faults_active());
    std::uint64_t lost_retries = 0;
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const auto a = idx->contains(probes[i], h(0));
      const auto b = idx->contains(probes[i], h(0));
      EXPECT_EQ(a.value, clean_hits[i]) << name;  // retries never change answers
      EXPECT_EQ(a.stats, b.stats) << name;        // loss draws are replayable
      EXPECT_GE(a.stats.messages, clean[i].messages) << name;
      lost_retries += a.stats.messages - clean[i].messages;
    }
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      EXPECT_EQ(idx->prefix_match(prefixes[i], h(0)).value, clean_prefix[i]) << name;
    }
    EXPECT_GT(lost_retries, 0u) << name;  // at p = 0.25 some attempt was dropped
    net.set_message_loss(0.0, 0);
    EXPECT_FALSE(net.faults_active());
  }
}

// Fault-unaware structures keep their answers under kills (the simulation
// routes mechanically through ghost hops) but every op that leaned on a dead
// host says so — the honesty contract the availability metrics build on.
TEST(FailureGhostHops, UnawareBackendFlagsDeadRoutes) {
  rng r(4821);
  const auto keys = wl::uniform_keys(256, r);
  const auto probes = wl::query_stream(keys, 150, 4822);
  network net(1);
  const auto idx =
      api::make_index("skip_graph", keys, api::index_options{}.seed(77).initial_hosts(64), net);
  std::vector<api::nn_result> clean;
  for (const auto q : probes) clean.push_back(idx->nearest(q, h(0)));

  kill_tenth(net);
  std::size_t failed = 0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto fr = idx->nearest(probes[i], h(0));
    EXPECT_EQ(fr.has_pred, clean[i].has_pred);
    EXPECT_EQ(fr.has_succ, clean[i].has_succ);
    if (fr.has_pred) EXPECT_EQ(fr.pred, clean[i].pred);
    if (fr.has_succ) EXPECT_EQ(fr.succ, clean[i].succ);
    if (fr.stats.failed) ++failed;
  }
  EXPECT_GT(failed, 0u);  // 10% dead hosts cannot go unnoticed
}

// --- replicated routing (1-D) -----------------------------------------------

TEST(Replication1D, RoutesAroundTenPercentDeadHosts) {
  rng r(4831);
  const auto keys = wl::uniform_keys(512, r);
  const auto probes = wl::query_stream(keys, 300, 4832);
  network net(keys.size());
  skipweb_1d web(keys, 21, net, skipweb_1d::placement::tower, 3);
  EXPECT_EQ(web.replication(), 3u);

  kill_tenth(net);
  const auto live = surviving_keys(web, keys);
  EXPECT_LT(live.size(), keys.size());  // some towers really are dead
  EXPECT_GT(live.size(), keys.size() * 8 / 10);

  std::size_t failed = 0;
  for (const auto q : probes) {
    const auto res = web.nearest(q, h(0));
    if (res.stats.failed) {
      ++failed;
      continue;
    }
    // An available answer is correct with respect to the live key set.
    expect_matches_oracle(res, live, q);
  }
  // k = 3 replicas tolerate 3 consecutive dead towers; at 10% killed the
  // chance of a blocked route is ~1e-4 per position.
  EXPECT_GE(static_cast<double>(probes.size() - failed),
            0.99 * static_cast<double>(probes.size()));

  // Batched fault-mode lookups stay identical to serial ones.
  const std::vector<std::uint64_t> batch(probes.begin(), probes.begin() + 50);
  const auto batched = web.nearest_batch(batch, h(0));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto serial = web.nearest(batch[i], h(0));
    EXPECT_EQ(batched[i].stats, serial.stats);
    if (serial.has_pred) EXPECT_EQ(batched[i].pred, serial.pred);
    if (serial.has_succ) EXPECT_EQ(batched[i].succ, serial.succ);
  }

  // Range queries walk the live base list.
  const auto lo = *live.begin();
  const auto hi = *std::prev(live.end());
  const auto rr = web.range(lo, hi, h(0), 0);
  if (!rr.stats.failed) {
    EXPECT_EQ(rr.value.size(), live.size());
  }
}

// --- self-repair (1-D) ------------------------------------------------------

TEST(Repair1D, StepsRestoreInvariantsAndAvailability) {
  rng r(4841);
  const auto keys = wl::uniform_keys(384, r);
  network net(keys.size());
  skipweb_1d web(keys, 31, net, skipweb_1d::placement::tower, 3);

  kill_tenth(net);
  ASSERT_TRUE(web.needs_repair());
  std::size_t repaired = 0, rounds = 0;
  for (;;) {
    const auto step = web.repair_step(h(0));
    ++rounds;
    ASSERT_TRUE(web.lists().check_invariants()) << "after repair round " << rounds;
    if (step.value == 0) break;
    repaired += step.value;
    EXPECT_GT(step.stats.messages, 0u);  // detection probes + relinks are priced
  }
  EXPECT_GT(repaired, 0u);
  EXPECT_FALSE(web.needs_repair());

  // Fully repaired: every stored key is live-owned, queries never fail, and
  // answers match the surviving key set exactly.
  const auto live = surviving_keys(web, keys);
  EXPECT_EQ(live.size(), web.size());
  const auto probes = wl::query_stream(keys, 200, 4842);
  for (const auto q : probes) {
    const auto res = web.nearest(q, h(0));
    EXPECT_FALSE(res.stats.failed);
    expect_matches_oracle(res, live, q);
  }
}

TEST(Repair1D, RegistryDrivesRepairToQuiescence) {
  rng r(4851);
  const auto keys = wl::uniform_keys(256, r);
  network net(1);
  auto idx = api::make_index("skipweb1d", keys,
                             api::index_options{}.seed(61).replication(3), net);
  ASSERT_TRUE(idx->supports(api::capability::fault_tolerant));
  kill_tenth(net);
  const auto rep = fault::repair_to_quiescence(*idx, h(0));
  EXPECT_GT(rep.repaired, 0u);
  EXPECT_EQ(rep.rounds, rep.repaired + 1);  // one record per step + the clean round
  EXPECT_GT(rep.cost.messages, 0u);
  // Quiescent: one more step is free of work.
  EXPECT_EQ(idx->repair_step(h(0)).value, 0u);
}

// --- self-repair (spatial) --------------------------------------------------

TEST(RepairQuadtree, RehomesRecordsAndKeepsLedgerExact) {
  rng r(4861);
  const auto pts = wl::uniform_points<2>(256, r);
  network net(256);
  core::skip_quadtree<2> qt(pts, 41, net, 3);
  ASSERT_TRUE(qt.check_invariants());

  // Fault-free probes for the byte-identity check below.
  std::vector<core::skip_quadtree<2>::locate_result> clean;
  for (const auto& p : pts) clean.push_back(qt.locate(p, h(0)));

  kill_tenth(net);
  ASSERT_TRUE(qt.check_invariants());  // kills move no memory
  std::size_t pre_failed = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto res = qt.locate(pts[i], h(0));
    // Ghost/replica hops never change the located cell.
    EXPECT_EQ(res.cell.corner, clean[i].cell.corner);
    EXPECT_TRUE(res.is_point);
    if (res.stats.failed) ++pre_failed;
  }

  std::size_t repaired = 0, rounds = 0;
  ASSERT_TRUE(qt.needs_repair());
  for (;;) {
    const auto step = qt.repair_step(h(0));
    ++rounds;
    ASSERT_TRUE(qt.check_invariants()) << "after repair round " << rounds;
    if (step.value == 0) break;
    repaired += step.value;
    EXPECT_GT(step.stats.messages, 0u);
  }
  EXPECT_GT(repaired, 0u);
  EXPECT_FALSE(qt.needs_repair());

  // Re-homed: locate routes entirely over live replicas.
  std::size_t post_failed = 0;
  for (const auto& p : pts) {
    const auto res = qt.locate(p, h(0));
    EXPECT_TRUE(res.is_point);
    if (res.stats.failed) ++post_failed;
  }
  EXPECT_LE(post_failed, pre_failed);
  EXPECT_GE(static_cast<double>(pts.size() - post_failed),
            0.99 * static_cast<double>(pts.size()));

  // Structural edits on the repaired structure keep the ledger exact.
  auto extra = wl::uniform_points<2>(8, r);
  for (const auto& p : extra) {
    (void)qt.insert(p, h(0));
    ASSERT_TRUE(qt.check_invariants());
  }
  for (const auto& p : extra) {
    (void)qt.erase(p, h(0));
    ASSERT_TRUE(qt.check_invariants());
  }
}

TEST(RepairQuadtree, UnreplicatedRunsFailMeasurablyAtTenPercent) {
  rng r(4871);
  const auto pts = wl::uniform_points<2>(256, r);
  network net(256);
  core::skip_quadtree<2> qt(pts, 41, net);  // replication off
  kill_tenth(net);
  std::size_t failed = 0;
  for (const auto& p : pts) {
    if (qt.locate(p, h(0)).stats.failed) ++failed;
  }
  EXPECT_GT(failed, 0u);
}

// --- sustained churn --------------------------------------------------------

TEST(ChurnSustained, KillRepairUpdateCyclesHoldInvariants) {
  rng r(4881);
  auto keys = wl::uniform_keys(256, r);
  network net(keys.size());
  skipweb_1d web(keys, 51, net, skipweb_1d::placement::tower, 3);

  const std::size_t ops = 120;
  fault::injector inj(net, wl::churn_schedule(net.host_count(), ops, 0.08, 0.04, 2, 4882));
  std::set<std::uint64_t> oracle(keys.begin(), keys.end());
  rng opr(4883);
  for (std::size_t op = 0; op < ops; ++op) {
    if (inj.advance_to(op) > 0 && web.needs_repair()) {
      while (web.repair_step(h(0)).value > 0) {
        ASSERT_TRUE(web.lists().check_invariants());
      }
      // Repair dropped the dead-owned keys; resync the oracle through the
      // public surface.
      for (auto it = oracle.begin(); it != oracle.end();) {
        if (!web.contains(*it, h(0)).value) it = oracle.erase(it);
        else ++it;
      }
    }
    switch (op % 3) {
      case 0: {  // insert a fresh key
        const auto k = opr.uniform_u64(0, (std::uint64_t{1} << 62) - 1);
        if (oracle.insert(k).second) (void)web.insert(k, h(0));
        break;
      }
      case 1: {  // erase a surviving key
        if (oracle.size() > 2) {
          auto it = oracle.begin();
          std::advance(it, static_cast<std::ptrdiff_t>(opr.index(oracle.size())));
          (void)web.erase(*it, h(0));
          oracle.erase(it);
        }
        break;
      }
      default: {  // query between ops
        const auto q = opr.uniform_u64(0, (std::uint64_t{1} << 62) - 1);
        const auto res = web.nearest(q, h(0));
        EXPECT_FALSE(res.stats.failed);
        expect_matches_oracle(res, oracle, q);
        break;
      }
    }
  }
  inj.finish();
  while (web.needs_repair() && web.repair_step(h(0)).value > 0) {
  }
  ASSERT_TRUE(web.lists().check_invariants());
  for (auto it = oracle.begin(); it != oracle.end();) {
    if (!web.contains(*it, h(0)).value) it = oracle.erase(it);
    else ++it;
  }
  EXPECT_EQ(oracle.size(), web.size());
  const auto probes = wl::query_stream({oracle.begin(), oracle.end()}, 100, 4884);
  for (const auto q : probes) {
    const auto res = web.nearest(q, h(0));
    EXPECT_FALSE(res.stats.failed);
    expect_matches_oracle(res, oracle, q);
  }
}

TEST(ChurnSustained, InjectorReplaysTheScheduleExactly) {
  network net(32);
  const auto events = wl::churn_schedule(32, 50, 0.3, 0.15, 2, 7);
  fault::injector inj(net, events);
  std::size_t fired = 0;
  for (std::size_t op = 0; op < 50; ++op) fired += inj.advance_to(op);
  fired += inj.finish();
  EXPECT_EQ(fired, events.size());
  EXPECT_EQ(inj.remaining(), 0u);
  // The network's liveness equals the schedule's net effect.
  std::size_t killed = 0;
  std::vector<bool> dead(32, false);
  for (const auto& e : events) {
    dead[e.host.value] = e.act == wl::churn_event::action::kill;
  }
  for (const auto d : dead) killed += d ? 1u : 0u;
  EXPECT_EQ(net.hosts_killed(), killed);
}

// --- background repair racing the query plane (the TSan headline) -----------

TEST(RepairDaemon, BackgroundRepairRacesQueriesCleanly) {
  rng r(4891);
  const auto keys = wl::uniform_keys(256, r);
  network net(keys.size());
  skipweb_1d web(keys, 61, net, skipweb_1d::placement::tower, 3);
  kill_tenth(net);
  ASSERT_TRUE(web.needs_repair());

  fault::repair_daemon daemon([&web] { return web.repair_step(h(0)).value; },
                              std::chrono::microseconds(50));
  const auto probes = wl::query_stream(keys, 400, 4892);
  constexpr std::size_t threads = 4;
  daemon.start();
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // Each op takes the read side of the daemon's gate: queries run
        // concurrently with each other, never with a repair step.
        for (std::size_t i = t; i < probes.size(); i += threads) {
          const std::shared_lock<std::shared_mutex> lk(daemon.gate());
          const auto res = web.nearest(probes[i], h(static_cast<std::uint32_t>(t)));
          (void)res;
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  daemon.stop();
  EXPECT_GT(daemon.snapshot().rounds, 0u);

  // Finish whatever repair remains, then the structure must be whole.
  while (web.repair_step(h(0)).value > 0) {
  }
  ASSERT_TRUE(web.lists().check_invariants());
  EXPECT_FALSE(web.needs_repair());
  const auto live = surviving_keys(web, keys);
  for (const auto q : wl::query_stream(keys, 100, 4893)) {
    const auto res = web.nearest(q, h(0));
    EXPECT_FALSE(res.stats.failed);
    expect_matches_oracle(res, live, q);
  }
}

}  // namespace
