#!/usr/bin/env python3
"""Fail if DESIGN.md / README.md reference repo paths that no longer exist.

The docs name concrete files constantly (src/net/cursor.h, tests/...,
BENCH_*.json); refactors move files and leave the prose behind. This checker
extracts every repo-relative path-looking token from the given markdown files
and verifies it exists, so CI catches the drift the moment it lands.

Usage: scripts/check_doc_refs.py [FILE...]   (defaults to DESIGN.md README.md)
"""

import os
import re
import sys

# src/net/cursor.h, tests/test_net.cpp, bench/bench_common.h,
# examples/quickstart.cpp, scripts/foo.py, .github/workflows/ci.yml — plus
# directory references like src/serve/ . Trailing braces expand:
# src/serve/route_cache.{h,cpp} means both files.
PATH_RE = re.compile(
    r"\b((?:src|tests|bench|examples|scripts|\.github)/[A-Za-z0-9_./\-]*"
    r"(?:\{[A-Za-z0-9_,. ]+\})?[A-Za-z0-9_/\-]*)"
)

# Doc prose also names the committed trajectory artifacts.
ARTIFACT_RE = re.compile(r"\b(BENCH_[A-Za-z0-9_]+\.json|[A-Z]+\.md|CMakePresets\.json|CMakeLists\.txt)\b")

GENERATED_OK = {
    # Patterns/wildcards and generated-at-runtime names that need not exist.
    "BENCH_.json",
}


def expand(token: str):
    """src/a/b.{h,cpp} -> [src/a/b.h, src/a/b.cpp]; plain tokens unchanged."""
    m = re.match(r"^(.*)\{([^}]*)\}(.*)$", token)
    if not m:
        return [token]
    head, alts, tail = m.groups()
    return [f"{head}{alt.strip()}{tail}" for alt in alts.split(",")]


def check(md_path: str, repo_root: str):
    bad = []
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    tokens = set(PATH_RE.findall(text)) | set(ARTIFACT_RE.findall(text))
    for token in sorted(tokens):
        for path in expand(token):
            path = path.rstrip(".,:;")
            if not path or path in GENERATED_OK or "*" in path:
                continue
            is_dir_ref = path.endswith("/")
            has_extension = "." in path.rsplit("/", 1)[-1]
            if not is_dir_ref and not has_extension:
                # Prose like "tests/benches/examples", not a path reference.
                continue
            full = os.path.join(repo_root, path)
            ok = os.path.isdir(full) if is_dir_ref else os.path.exists(full)
            if not ok:
                bad.append((md_path, path))
    return bad


def main(argv):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = argv[1:] or [
        os.path.join(repo_root, "DESIGN.md"),
        os.path.join(repo_root, "README.md"),
    ]
    bad = []
    for md in files:
        bad.extend(check(md, repo_root))
    if bad:
        for md, path in bad:
            print(f"{md}: dead reference: {path}", file=sys.stderr)
        return 1
    print(f"doc refs ok ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
