#!/usr/bin/env python3
"""Diff two BENCH_*.json files section by section.

Every bench emits arrays of sample objects keyed by identity fields
(backend, mix, n, threads, ...). This tool matches rows across two runs of
the same bench and prints per-section metric deltas — ops/s ratios for the
throughput-style metrics, old/new pairs for the latency-style ones — so a
perf trajectory or a CI gate message shows *which* cells moved, not just
that something did.

Usage:
    bench_compare.py OLD.json NEW.json [--sections samples,bign_scaling,...]
                     [--fail-below RATIO]

--fail-below R exits 1 when any higher-is-better metric of a compared row
lands below R * old (0.9 = "fail on a >10% drop"), and exits 2 when a gated
section has no rows in common — a silent empty intersection must never read
as a pass. Rows present in only one file are reported but never gated (cell
lists legitimately differ between a full run and a gate run).
"""

import argparse
import json
import sys

# Identity fields: every subset present in a row forms its key.
ID_FIELDS = ("backend", "structure", "mix", "workload", "arm", "phase", "n",
             "threads", "s", "cache", "kill_fraction", "replication", "batch")

# section -> (higher-is-better metrics, lower-is-better metrics)
SECTION_METRICS = {
    "samples": (("ops_per_sec",), ("messages_per_op",)),
    "bign_scaling": (("serial_ops_per_sec", "batch_ops_per_sec", "bulk_speedup"),
                     ("bulk_build_seconds",)),
    "thread_scaling": (("ops_per_sec", "per_thread_ops_per_sec"), ()),
    "restart": (("restore_speedup_vs_bulk",),
                ("restore_map_seconds", "restore_load_seconds", "first_query_ms")),
    "rows": ((), ("p99_ns", "messages_per_op")),
    "saturation": ((), ("p99_ns",)),
}


def row_key(row):
    return tuple((f, row[f]) for f in ID_FIELDS if f in row)


def fmt_key(key):
    return " ".join(f"{v}" if f in ("backend", "structure", "mix", "workload",
                                    "arm", "phase") else f"{f}={v}"
                    for f, v in key)


def index_rows(doc, section):
    rows = doc.get(section)
    if not isinstance(rows, list):
        return None
    out = {}
    for row in rows:
        if isinstance(row, dict):
            out[row_key(row)] = row
    return out


def compare_section(section, old_rows, new_rows, fail_below):
    higher, lower = SECTION_METRICS.get(section, ((), ()))
    common = [k for k in old_rows if k in new_rows]
    failures = []
    print(f"== {section}: {len(common)} common rows "
          f"({len(old_rows) - len(common)} only-old, "
          f"{len(new_rows) - len(common)} only-new)")
    for key in common:
        o, n = old_rows[key], new_rows[key]
        parts = []
        for metric in higher + lower:
            if metric not in o or metric not in n:
                continue
            ov, nv = float(o[metric]), float(n[metric])
            ratio = nv / ov if ov else float("inf")
            arrow = ""
            if metric in higher and fail_below is not None and ratio < fail_below:
                arrow = "  <-- FAIL"
                failures.append((section, fmt_key(key), metric, ov, nv, ratio))
            parts.append(f"{metric} {ov:,.6g} -> {nv:,.6g} ({ratio:.2f}x){arrow}")
        if parts:
            print(f"  {fmt_key(key)}: " + "; ".join(parts))
    return len(common), failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--sections", default=None,
                    help="comma list; default: every known section present in both files")
    ap.add_argument("--fail-below", type=float, default=None, metavar="RATIO",
                    help="exit 1 if any higher-is-better metric drops below RATIO * old")
    args = ap.parse_args()

    with open(args.old) as f:
        old_doc = json.load(f)
    with open(args.new) as f:
        new_doc = json.load(f)

    if args.sections:
        sections = args.sections.split(",")
    else:
        sections = [s for s in SECTION_METRICS
                    if isinstance(old_doc.get(s), list) and isinstance(new_doc.get(s), list)]

    all_failures = []
    for section in sections:
        old_rows = index_rows(old_doc, section)
        new_rows = index_rows(new_doc, section)
        if old_rows is None or new_rows is None:
            print(f"== {section}: absent from "
                  f"{'both' if old_rows is None and new_rows is None else 'one file'}, skipped")
            continue
        compared, failures = compare_section(section, old_rows, new_rows, args.fail_below)
        all_failures.extend(failures)
        if args.fail_below is not None and compared == 0:
            print(f"error: gated section '{section}' has no rows in common", file=sys.stderr)
            return 2

    if all_failures:
        print()
        for section, key, metric, ov, nv, ratio in all_failures:
            print(f"::error::{section} {key}: {metric} regressed to {ratio:.2f}x "
                  f"({ov:,.0f} -> {nv:,.0f})")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
